#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "repro/api.hpp"

namespace repro::obs {

namespace detail {

// The REPRO_OBS knob is parsed by repro::Options (the single env-parsing
// point, include/repro/api.hpp).
std::atomic<bool> g_enabled{Options::global().obs};

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - trace_epoch())
      .count();
}

// Per-thread event buffer. The shared_ptr in the registry keeps it alive
// past thread exit; the buffer mutex is uncontended except during export
// or clear.
struct Tracer::ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

namespace {

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Tracer::ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
};

BufferRegistry& buffer_registry() {
  static BufferRegistry* registry = new BufferRegistry;  // never destroyed:
  // worker threads may record during static destruction of other objects.
  return *registry;
}

thread_local Tracer::ThreadBuffer* t_buffer = nullptr;

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  if (t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    BufferRegistry& registry = buffer_registry();
    std::lock_guard lock(registry.mutex);
    buffer->tid = registry.next_tid++;
    registry.buffers.push_back(buffer);
    t_buffer = buffer.get();
  }
  return *t_buffer;
}

std::uint32_t Tracer::this_thread_id() {
  return instance().local_buffer().tid;
}

void Tracer::record(TraceEvent event) {
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void Tracer::clear() {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard registry_lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    std::lock_guard lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::size_t Tracer::event_count() const {
  BufferRegistry& registry = buffer_registry();
  std::lock_guard registry_lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    std::lock_guard lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> events;
  {
    BufferRegistry& registry = buffer_registry();
    std::lock_guard registry_lock(registry.mutex);
    for (const auto& buffer : registry.buffers) {
      std::lock_guard lock(buffer->mutex);
      events.insert(events.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void Tracer::export_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  std::string line;
  for (const TraceEvent& e : events) {
    line.clear();
    if (!first) line += ",";
    first = false;
    line += "\n{\"name\":\"";
    append_json_escaped(line, e.name);
    line += "\",\"cat\":\"";
    append_json_escaped(line, e.cat);
    line += "\",\"ph\":\"";
    line += e.phase;
    line += "\",\"pid\":1,\"tid\":";
    line += std::to_string(e.tid);
    char number[64];
    std::snprintf(number, sizeof number, ",\"ts\":%.3f", e.ts_us);
    line += number;
    if (e.phase == 'X') {
      std::snprintf(number, sizeof number, ",\"dur\":%.3f", e.dur_us);
      line += number;
    } else if (e.phase == 'i') {
      line += ",\"s\":\"t\"";  // thread-scoped instant
    }
    line += ",\"args\":{";
    line += e.args;
    line += "}}";
    os << line;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Span::Span(std::string_view name, std::string_view cat) : active_(enabled()) {
  if (!active_) return;
  event_.name.assign(name.data(), name.size());
  event_.cat.assign(cat.data(), cat.size());
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  const double end_us = now_us();
  event_.ts_us = start_us_;
  event_.dur_us = end_us - start_us_;
  // Stage-category spans double as the per-stage wall-time histograms of
  // the metrics registry (DESIGN.md §9).
  if (event_.cat == "stage" || event_.cat == "experiment") {
    Registry::instance()
        .histogram("stage." + event_.name + ".wall_s")
        .observe(event_.dur_us * 1e-6);
  }
  Tracer::instance().record(std::move(event_));
}

Span& Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  append_json_escaped(event_.args, key);
  event_.args += "\":\"";
  append_json_escaped(event_.args, value);
  event_.args += '"';
  return *this;
}

Span& Span::arg(std::string_view key, double value) {
  if (!active_) return *this;
  char number[64];
  std::snprintf(number, sizeof number, "%.9g", value);
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  append_json_escaped(event_.args, key);
  event_.args += "\":";
  event_.args += number;
  return *this;
}

Span& Span::arg(std::string_view key, std::uint64_t value) {
  if (!active_) return *this;
  if (!event_.args.empty()) event_.args += ',';
  event_.args += '"';
  append_json_escaped(event_.args, key);
  event_.args += "\":";
  event_.args += std::to_string(value);
  return *this;
}

void instant(std::string_view name, std::string_view cat,
             std::string_view args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name.assign(name.data(), name.size());
  event.cat.assign(cat.data(), cat.size());
  event.phase = 'i';
  event.ts_us = now_us();
  event.args.assign(args.data(), args.size());
  Tracer::instance().record(std::move(event));
}

}  // namespace repro::obs
