// Process-wide metrics registry (observability layer, DESIGN.md §9).
//
// Named counters, gauges and duration histograms, designed for ALWAYS-ON
// operation under serve traffic: every counter/histogram is sharded into
// cache-line-sized cells indexed by a per-thread slot, so concurrent
// updates from the admission path, the dispatcher and the workers never
// contend on one atomic. Cells are aggregated only at snapshot/export
// time. Instrument lookup takes a shared lock; call sites that update per
// event should resolve the instrument once and keep the reference
// (references are stable for the registry's lifetime).
//
// Reset contract (DESIGN.md §9): `Registry::reset()` and
// `snapshot_and_reset()` zero each instrument cell with an atomic
// exchange, so every concurrent `Counter::add()` lands entirely in either
// the taken snapshot or the new epoch — no increment is ever lost or
// double-counted. A concurrent `Histogram::observe()` is atomic per
// *field* (its count, sum and bucket updates may straddle the reset and
// split across the two epochs), which is why histogram consistency is
// stated per snapshot, not across resets: within any single snapshot,
// `count >= sum(buckets)` always holds (observers bump `count` before the
// bucket; snapshots read buckets before counts, with release/acquire
// pairing on the bucket cell).
//
// Exporters: plain text (one line per instrument) and JSON lines (one
// object per instrument), see DESIGN.md §9 for the formats. Both render
// from `snapshot()`, so one export is internally consistent.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repro::obs {

namespace detail {

/// Update cells per instrument. More cells = less contention, more memory
/// and a longer aggregation loop; 16/8 keep both far off any hot path.
inline constexpr std::size_t kCounterCells = 16;
inline constexpr std::size_t kHistogramCells = 8;

/// Dense per-thread slot id, assigned on first metric update (metrics.cpp).
std::size_t assign_cell_slot() noexcept;

inline std::size_t cell_slot() noexcept {
  thread_local const std::size_t slot = assign_cell_slot();
  return slot;
}

}  // namespace detail

/// Monotone event counter, sharded per thread slot. `value()` sums the
/// cells; because each cell is monotone, a value read after the writing
/// threads joined is exact.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::cell_slot() % detail::kCounterCells].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Atomically snapshots and zeroes the counter (per-cell exchange): a
  /// concurrent add() is captured by exactly one of the returned value and
  /// the counter's next epoch.
  std::uint64_t take() noexcept {
    std::uint64_t total = 0;
    for (Cell& cell : cells_) {
      total += cell.value.exchange(0, std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept { take(); }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, detail::kCounterCells> cells_{};
};

/// Last-write-wins instantaneous value (e.g. outstanding queue depth).
/// Not sharded: sharding a last-write-wins cell would change semantics.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  /// buckets[i] counts observations v with upper bound 2^(i - kZeroBucket)
  /// (see Histogram::bucket_upper_bound).
  std::array<std::uint64_t, 48> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  std::uint64_t bucket_total() const {
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    return total;
  }

  /// Quantile estimate from the log2 buckets, `q` in [0, 1] (clamped).
  /// Within the bucket holding rank q * bucket_total(), the value is
  /// linearly interpolated between the bucket's bounds, so q = 0 / q = 1
  /// land exactly on the lowest / highest populated bucket edge; the
  /// result is then clamped to the observed [min, max] envelope (which
  /// tightens the edge buckets to real data). 0 when empty. The serve
  /// load harness and `--metrics-every` report p50/p95/p99 through this.
  double percentile(double q) const;
};

/// Log2-bucketed duration histogram (seconds), sharded per thread slot.
/// Covers ~2^-32 s (sub-ns) to ~2^15 s; out-of-range values clamp to the
/// edge buckets. Double aggregates (sum/min/max) update via CAS loops —
/// `atomic<double>::fetch_add` is not portably available/correct here —
/// and `snapshot()` guarantees `count >= sum(buckets)` under concurrent
/// observe (see the header comment).
class Histogram {
 public:
  static constexpr int kBuckets = 48;
  static constexpr int kZeroBucket = 32;  // bucket index of values in [0.5, 1)

  void observe(double v) noexcept;
  HistogramSnapshot snapshot() const;
  /// Snapshot-and-zero (per-cell exchange). Concurrent observers may split
  /// an observation's fields across the returned snapshot and the next
  /// epoch; each field lands in exactly one.
  HistogramSnapshot take();

  /// Single-thread local accumulator for hot loops that observe many values
  /// per cycle (the serve dispatcher batches per-request latency this way).
  /// `observe()` is plain arithmetic — no atomics — and `flush()` merges
  /// the whole batch into one histogram cell with one atomic update per
  /// touched field, count before buckets, so the snapshot invariant
  /// `count >= sum(buckets)` holds mid-merge. Not thread-safe; staleness is
  /// bounded by the caller's flush cadence.
  class Batch {
   public:
    void observe(double v) noexcept {
      ++local_.count;
      local_.sum += v;
      if (v < local_.min) local_.min = v;
      if (v > local_.max) local_.max = v;
      ++local_.buckets[static_cast<std::size_t>(bucket_of(v))];
    }
    bool empty() const noexcept { return local_.count == 0; }
    /// Merges into `into` and clears the batch. No-op when empty.
    void flush(Histogram& into) noexcept;

   private:
    HistogramSnapshot local_{};
  };

  /// Bucket index of value `v`. Inline and branch-light (the exponent is
  /// read straight from the double's bits — for normal positive doubles
  /// the biased exponent IS floor(log2 v), and subnormals fall through to
  /// the clamp) because Batch::observe runs once per served request.
  static int bucket_of(double v) noexcept {
    if (!(v > 0.0)) return 0;  // non-positive and NaN clamp to the bottom
    const int exponent =
        static_cast<int>((std::bit_cast<std::uint64_t>(v) >> 52) & 0x7FF) -
        1023;  // v in [2^exponent, 2^(exponent+1))
    const int index = exponent + 1 + kZeroBucket;
    return index < 0 ? 0 : index >= kBuckets ? kBuckets - 1 : index;
  }
  /// Exclusive upper bound of bucket `i` in seconds.
  static double bucket_upper_bound(int i) noexcept;
  /// Inclusive lower bound of bucket `i`: 0 for the clamp bucket 0,
  /// otherwise the upper bound of bucket i-1.
  static double bucket_lower_bound(int i) noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{0.0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Cell, detail::kHistogramCells> cells_{};
};

struct RegistrySnapshot;

/// Render a snapshot in the registry's text / JSONL export formats (the
/// Registry::export_* members call these on a fresh snapshot; periodic
/// exporters call them on a snapshot_and_reset() delta).
void export_text(const RegistrySnapshot& snap, std::ostream& os);
void export_jsonl(const RegistrySnapshot& snap, std::ostream& os);

/// One consistent view of every instrument, sorted by name within each
/// kind (the exporters and the serve wire's metrics endpoint render from
/// this).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/// Name -> instrument map. Instruments are created on first use and never
/// destroyed (reset() zeroes values but keeps identities), so returned
/// references remain valid for the process lifetime.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter, or 0 if it was never touched (does not create).
  std::uint64_t counter_value(std::string_view name) const;
  /// Snapshot of a histogram (all-zero if it was never touched).
  HistogramSnapshot histogram_snapshot(std::string_view name) const;

  /// Reads every instrument (identities unchanged).
  RegistrySnapshot snapshot() const;
  /// Reads and zeroes every instrument, atomically per instrument cell
  /// (see the reset contract in the header comment). Used by periodic
  /// exporters (`repro-serve --metrics-every`) so long-running serve
  /// sessions emit per-interval deltas without losing counts.
  RegistrySnapshot snapshot_and_reset();

  /// Zeroes every instrument (identities and references stay valid).
  /// Equivalent to discarding snapshot_and_reset(): concurrent counter
  /// add()s land entirely before or after the reset, never partially.
  void reset();

  /// `<kind> <name> <value...>` per line, sorted by name.
  void export_text(std::ostream& os) const;
  /// One JSON object per line: {"type":...,"name":...,...}.
  void export_jsonl(std::ostream& os) const;

 private:
  Registry() = default;

  RegistrySnapshot collect(bool reset_cells) const;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace repro::obs
