// Process-wide metrics registry (observability layer, DESIGN.md §9).
//
// Named counters, gauges and duration histograms, updated lock-free with
// relaxed atomics so instrumented hot paths (cache lookups, per-phase
// power evaluation, scheduler queue operations) stay cheap and TSan-clean.
// Instrument lookup takes a shared lock; call sites that update per event
// should resolve the instrument once and keep the reference (references
// are stable for the registry's lifetime).
//
// Exporters: plain text (one line per instrument) and JSON lines (one
// object per instrument), see DESIGN.md §9 for the formats.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

namespace repro::obs {

/// Monotone event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. outstanding queue depth).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
  /// buckets[i] counts observations v with upper bound 2^(i - kZeroBucket)
  /// (see Histogram::bucket_upper_bound).
  std::array<std::uint64_t, 48> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Log2-bucketed duration histogram (seconds). Covers ~2^-32 s (sub-ns)
/// to ~2^15 s; out-of-range values clamp to the edge buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 48;
  static constexpr int kZeroBucket = 32;  // bucket index of values in [0.5, 1)

  void observe(double v) noexcept;
  HistogramSnapshot snapshot() const;

  static int bucket_of(double v) noexcept;
  /// Exclusive upper bound of bucket `i` in seconds.
  static double bucket_upper_bound(int i) noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Name -> instrument map. Instruments are created on first use and never
/// destroyed (reset() zeroes values but keeps identities), so returned
/// references remain valid for the process lifetime.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter, or 0 if it was never touched (does not create).
  std::uint64_t counter_value(std::string_view name) const;
  /// Snapshot of a histogram (all-zero if it was never touched).
  HistogramSnapshot histogram_snapshot(std::string_view name) const;

  /// Zeroes every instrument (identities and references stay valid).
  void reset();

  /// `<kind> <name> <value...>` per line, sorted by name.
  void export_text(std::ostream& os) const;
  /// One JSON object per line: {"type":...,"name":...,...}.
  void export_jsonl(std::ostream& os) const;

 private:
  Registry() = default;

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace repro::obs
