#include "obs/attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

namespace repro::obs {

AttributionTable attribute(const sim::TraceResult& trace,
                           const sim::GpuConfig& config,
                           const power::PowerModel& model, double ecc_adjust,
                           double measured_energy_j) {
  AttributionTable table;
  // Per-table memo: attribution evaluates every phase of the structural
  // trace, and iterative kernels repeat identical activity bundles many
  // times — the memo collapses those to one dynamic-energy evaluation
  // with bit-identical doubles (DESIGN.md §10).
  power::PhasePowerMemo memo{model, config, config.ecc ? ecc_adjust : 1.0};

  std::map<std::string, KernelAttribution> by_kernel;
  for (const sim::Phase& phase : trace.phases) {
    KernelAttribution& k = by_kernel[phase.kernel_name];
    if (k.kernel.empty()) k.kernel = phase.kernel_name;
    const power::PhasePower p =
        memo.phase_power(phase.activity, phase.duration_s);
    ++k.phases;
    k.time_s += phase.duration_s;
    k.model_energy_j += p.total_w * phase.duration_s;
  }

  table.kernels.reserve(by_kernel.size());
  for (auto& [name, k] : by_kernel) {
    table.total_time_s += k.time_s;
    table.model_energy_j += k.model_energy_j;
    table.kernels.push_back(std::move(k));
  }

  const bool scale = measured_energy_j > 0.0 && table.model_energy_j > 0.0;
  for (KernelAttribution& k : table.kernels) {
    k.avg_power_w = k.time_s > 0.0 ? k.model_energy_j / k.time_s : 0.0;
    k.energy_share = table.model_energy_j > 0.0
                         ? k.model_energy_j / table.model_energy_j
                         : 0.0;
    k.energy_j = scale ? k.energy_share * measured_energy_j : k.model_energy_j;
    table.attributed_energy_j += k.energy_j;
  }

  std::sort(table.kernels.begin(), table.kernels.end(),
            [](const KernelAttribution& a, const KernelAttribution& b) {
              if (a.energy_j != b.energy_j) return a.energy_j > b.energy_j;
              return a.kernel < b.kernel;  // deterministic tie-break
            });
  return table;
}

void print(std::ostream& os, const AttributionTable& table) {
  os << "   kernel                         phases   time [s]  energy [J]"
        "  power [W]   share\n";
  char line[192];
  for (const KernelAttribution& k : table.kernels) {
    std::snprintf(line, sizeof line,
                  "   %-30s %6d %10.4f %11.4f %10.2f  %5.1f%%\n",
                  k.kernel.c_str(), k.phases, k.time_s, k.energy_j,
                  k.avg_power_w, 100.0 * k.energy_share);
    os << line;
  }
  std::snprintf(line, sizeof line,
                "   total                          %6zu %10.4f %11.4f\n",
                table.kernels.size(), table.total_time_s,
                table.attributed_energy_j);
  os << line;
}

}  // namespace repro::obs
