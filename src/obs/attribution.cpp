#include "obs/attribution.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

namespace repro::obs {

AttributionTable attribute(const sim::TraceResult& trace,
                           const sim::GpuConfig& config,
                           const power::PowerModel& model, double ecc_adjust,
                           double measured_energy_j,
                           const std::vector<double>* phase_extra_static_j) {
  AttributionTable table;
  // Per-table memo: attribution evaluates every phase of the structural
  // trace, and iterative kernels repeat identical activity bundles many
  // times — the memo collapses those to one dynamic-energy evaluation
  // with bit-identical doubles (DESIGN.md §10).
  power::PhasePowerMemo memo{model, config, config.ecc ? ecc_adjust : 1.0};

  std::map<std::string, KernelAttribution> by_kernel;
  for (std::size_t idx = 0; idx < trace.phases.size(); ++idx) {
    const sim::Phase& phase = trace.phases[idx];
    KernelAttribution& k = by_kernel[phase.kernel_name];
    if (k.kernel.empty()) k.kernel = phase.kernel_name;
    const power::PhasePower p =
        memo.phase_power(phase.activity, phase.duration_s);
    ++k.phases;
    k.time_s += phase.duration_s;
    // Thermal extra static energy of this phase's window (leakage delta +
    // throttle delta): lands in both the static column and the model
    // energy, so the class/static decomposition still sums exactly.
    const double extra_j =
        phase_extra_static_j != nullptr && idx < phase_extra_static_j->size()
            ? (*phase_extra_static_j)[idx]
            : 0.0;
    const double phase_j = p.total_w * phase.duration_s;
    k.model_energy_j += phase_j + extra_j;
    // Class split of this phase's model energy. The raw split is the
    // instruction-class dynamic energies plus the static (tail-power)
    // energy; one common scale maps it onto phase_j, distributing the
    // ECC anomaly multiplier and the TDP clamp proportionally so the
    // columns always sum to the phase's model energy.
    const power::ClassEnergies& ce = memo.class_energies(phase.activity);
    const double static_raw_j = memo.tail_power_w() * phase.duration_s;
    const double raw_sum_j = ce.total_j() + static_raw_j;
    const double scale = raw_sum_j > 0.0 ? phase_j / raw_sum_j : 0.0;
    for (int c = 0; c < power::kNumInstClasses; ++c) {
      k.class_energy_j[static_cast<std::size_t>(c)] +=
          ce.j[static_cast<std::size_t>(c)] * scale;
    }
    k.static_energy_j += static_raw_j * scale + extra_j;
  }

  table.kernels.reserve(by_kernel.size());
  for (auto& [name, k] : by_kernel) {
    table.total_time_s += k.time_s;
    table.model_energy_j += k.model_energy_j;
    for (int c = 0; c < power::kNumInstClasses; ++c) {
      table.class_energy_j[static_cast<std::size_t>(c)] +=
          k.class_energy_j[static_cast<std::size_t>(c)];
    }
    table.static_energy_j += k.static_energy_j;
    table.kernels.push_back(std::move(k));
  }

  const bool scale = measured_energy_j > 0.0 && table.model_energy_j > 0.0;
  for (KernelAttribution& k : table.kernels) {
    k.avg_power_w = k.time_s > 0.0 ? k.model_energy_j / k.time_s : 0.0;
    k.energy_share = table.model_energy_j > 0.0
                         ? k.model_energy_j / table.model_energy_j
                         : 0.0;
    k.energy_j = scale ? k.energy_share * measured_energy_j : k.model_energy_j;
    table.attributed_energy_j += k.energy_j;
  }

  std::sort(table.kernels.begin(), table.kernels.end(),
            [](const KernelAttribution& a, const KernelAttribution& b) {
              if (a.energy_j != b.energy_j) return a.energy_j > b.energy_j;
              return a.kernel < b.kernel;  // deterministic tie-break
            });
  return table;
}

void print(std::ostream& os, const AttributionTable& table) {
  os << "   kernel                         phases   time [s]  energy [J]"
        "  power [W]   share\n";
  char line[192];
  for (const KernelAttribution& k : table.kernels) {
    std::snprintf(line, sizeof line,
                  "   %-30s %6d %10.4f %11.4f %10.2f  %5.1f%%\n",
                  k.kernel.c_str(), k.phases, k.time_s, k.energy_j,
                  k.avg_power_w, 100.0 * k.energy_share);
    os << line;
  }
  std::snprintf(line, sizeof line,
                "   total                          %6zu %10.4f %11.4f\n",
                table.kernels.size(), table.total_time_s,
                table.attributed_energy_j);
  os << line;

  // Instruction-class block (model scale: columns + static sum to each
  // kernel's model energy, not to the measured-scaled energy_j above).
  os << "   instruction-class energy [J], model scale\n"
        "   kernel                           fp32    fp64     int     sfu"
        "    gmem    smem    ctrl  static\n";
  const auto class_row = [&](const char* name,
                             const std::array<double, power::kNumInstClasses>&
                                 classes,
                             double static_j) {
    std::snprintf(line, sizeof line,
                  "   %-30s %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f\n",
                  name, classes[0], classes[1], classes[2], classes[3],
                  classes[4], classes[5], classes[6], static_j);
    os << line;
  };
  for (const KernelAttribution& k : table.kernels) {
    class_row(k.kernel.c_str(), k.class_energy_j, k.static_energy_j);
  }
  class_row("total", table.class_energy_j, table.static_energy_j);
}

}  // namespace repro::obs
