// Per-kernel energy and runtime attribution (observability layer,
// DESIGN.md §9).
//
// The measurement pipeline reports whole-program metrics, like the paper.
// This module answers "which kernel burned the joules": it evaluates the
// activity-based power model over every phase of a structural trace
// (sim::TraceResult::phases), aggregates phases by kernel name, and
// produces each kernel's share of the model's active energy — attribution
// below whole-program granularity in the spirit of Arafa et al.
// (instruction-level energy measurement, PAPERS.md).
//
// Because the *measured* energy additionally carries sensor lag, noise
// and threshold effects, a kernel's measured joules cannot be observed
// directly. We therefore attribute the model's energy *shares* to the
// measured total: scaled_energy_j(kernel) = share(kernel) * measured. By
// construction the per-kernel values sum to the measured energy (within
// floating-point tolerance of the summation), which tests/obs_test.cpp
// pins.
//
// Below the kernel rows, each kernel's model energy further decomposes
// into instruction-class columns (power::InstClass) plus a static share.
// Per phase, the raw class energies (power::ClassEnergies) and the static
// tail-power energy are scaled by one common factor so they sum exactly
// to that phase's model energy — the factor absorbs the ECC power-anomaly
// multiplier and the 225 W TDP clamp proportionally across classes. The
// pinned cross-check law (tests/obs_test.cpp): for every kernel,
// sum_c(class_energy_j[c]) + static_energy_j == model_energy_j, and the
// table totals obey the same identity.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "power/model.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::obs {

/// One kernel's aggregated contribution over a whole trace.
struct KernelAttribution {
  std::string kernel;
  int phases = 0;              // merged launch phases of this kernel
  double time_s = 0.0;         // summed phase durations (model ground truth)
  double model_energy_j = 0.0; // model: phase power * duration, summed
  double avg_power_w = 0.0;    // model_energy_j / time_s
  double energy_share = 0.0;   // model_energy_j / total model energy
  double energy_j = 0.0;       // energy_share * measured total (or model
                               // energy when no measured total was given)
  /// Instruction-class split of model_energy_j, indexed by
  /// power::InstClass; class columns + static_energy_j sum to
  /// model_energy_j (see the header comment).
  std::array<double, power::kNumInstClasses> class_energy_j{};
  double static_energy_j = 0.0;  // tail/leakage/board share of model energy
};

struct AttributionTable {
  std::vector<KernelAttribution> kernels;  // sorted by descending energy
  double total_time_s = 0.0;
  double model_energy_j = 0.0;     // total model active energy
  double attributed_energy_j = 0.0;  // what energy_j columns sum to
  /// Column sums of the kernels' class/static splits; together they sum
  /// to model_energy_j.
  std::array<double, power::kNumInstClasses> class_energy_j{};
  double static_energy_j = 0.0;
};

/// Builds the per-kernel table for one trace under `config`. When
/// `measured_energy_j > 0` (a usable ExperimentResult::energy_j), kernel
/// energies are the model shares scaled to that total; otherwise they are
/// the raw model energies. `phase_extra_static_j`, when given, holds one
/// extra static energy per trace phase (thermal scenarios: the leakage
/// delta + throttle delta inside the phase window, DESIGN.md §16); each
/// value is added to the phase's static AND model energy, so the
/// decomposition law keeps holding with temperature-dependent static
/// power.
AttributionTable attribute(
    const sim::TraceResult& trace, const sim::GpuConfig& config,
    const power::PowerModel& model, double ecc_adjust = 1.0,
    double measured_energy_j = 0.0,
    const std::vector<double>* phase_extra_static_j = nullptr);

/// Renders the table: one row per kernel (time, energy, power, share),
/// followed by the instruction-class energy block (model scale, joules).
void print(std::ostream& os, const AttributionTable& table);

}  // namespace repro::obs
