// Host graph algorithms.
//
// Two roles:
//  1. Reference results for validating the workload implementations
//     (BFS levels, shortest-path distances, MST weight).
//  2. Execution *profiles* (per-iteration frontier/work sizes, sweep counts)
//     that the graph workloads translate into kernel-launch traces. The
//     topology-driven variants model the GPU's intra-sweep update
//     visibility: on real hardware, whether a relaxation written by one
//     thread is seen by others in the same grid sweep depends on timing,
//     which is exactly the paper's explanation for why small frequency
//     changes swing the runtime of irregular codes both ways (§V.A.1).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.hpp"

namespace repro::graph {

inline constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

/// Result of a data-driven (worklist) BFS: exact per-level frontier sizes
/// and the number of edges examined per level.
struct BfsProfile {
  std::vector<std::uint32_t> levels;          // per node; kUnreached if not reached
  std::vector<std::uint64_t> frontier_nodes;  // per level
  std::vector<std::uint64_t> frontier_edges;  // per level
  std::uint32_t depth = 0;                    // number of levels
  std::uint64_t reached = 0;                  // nodes reached
};

BfsProfile bfs(const CsrGraph& g, NodeId source);

/// A well-connected source node for traversal benchmarks: the
/// highest-degree node (lowest id on ties). Benchmark inputs specify a
/// source inside the giant component; on generated graphs node 0 can be
/// isolated, so workloads use this instead.
NodeId best_source(const CsrGraph& g);

/// Profile of a topology-driven fixpoint computation: every sweep touches
/// all nodes and all edges; the number of sweeps depends on how quickly
/// updates propagate.
struct SweepProfile {
  std::uint32_t sweeps = 0;
  std::vector<std::uint64_t> updates_per_sweep;  // nodes whose value changed
  std::vector<std::uint32_t> values;             // final per-node values
};

/// Topology-driven BFS (one node per thread, all nodes every sweep).
/// `visibility` in [0,1] is the probability that a value written earlier in
/// the same sweep is already visible when read (1.0 = perfect Gauss-Seidel
/// propagation, 0.0 = Jacobi double-buffering). `seed` fixes the per-edge
/// visibility coin flips so a given (graph, visibility) pair is
/// deterministic.
SweepProfile topology_bfs(const CsrGraph& g, NodeId source, double visibility,
                          std::uint64_t seed);

/// Topology-driven SSSP (Bellman-Ford style sweeps) with the same
/// visibility model. Values are path distances.
SweepProfile topology_sssp(const CsrGraph& g, NodeId source, double visibility,
                           std::uint64_t seed);

/// Reference single-source shortest path distances (Dijkstra).
std::vector<std::uint64_t> dijkstra(const CsrGraph& g, NodeId source);

/// Profile of Boruvka's MST algorithm: per-round component counts and the
/// number of edges scanned while looking for minimum outgoing edges.
struct BoruvkaProfile {
  std::vector<std::uint64_t> components_per_round;   // before each round
  std::vector<std::uint64_t> edges_scanned_per_round;
  std::uint64_t mst_weight = 0;
  std::uint64_t mst_edges = 0;
};

BoruvkaProfile boruvka(const CsrGraph& g);

/// Number of connected components (union-find reference).
std::uint64_t connected_components(const CsrGraph& g);

}  // namespace repro::graph
