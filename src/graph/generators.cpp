#include "graph/generators.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace repro::graph {

using repro::util::Rng;

CsrGraph roadmap(std::uint32_t width, std::uint32_t height, std::uint64_t seed) {
  Rng rng{seed};
  const NodeId n = width * height;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 2);
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  // A small fraction of "missing roads" keeps degrees irregular like real
  // road networks (average degree ~2.5 rather than exactly 4).
  constexpr double kDropProbability = 0.22;
  constexpr double kDiagonalProbability = 0.06;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const auto weight = [&] {
        return static_cast<std::uint32_t>(1 + rng.uniform_index(1000));
      };
      if (x + 1 < width && !rng.bernoulli(kDropProbability)) {
        edges.push_back({id(x, y), id(x + 1, y), weight()});
      }
      if (y + 1 < height && !rng.bernoulli(kDropProbability)) {
        edges.push_back({id(x, y), id(x, y + 1), weight()});
      }
      if (x + 1 < width && y + 1 < height && rng.bernoulli(kDiagonalProbability)) {
        edges.push_back({id(x, y), id(x + 1, y + 1), weight()});
      }
    }
  }
  return CsrGraph::from_edges(n, edges, /*symmetrize=*/true);
}

CsrGraph random_kway(NodeId num_nodes, double k, std::uint64_t seed) {
  Rng rng{seed};
  // Undirected: each inserted edge contributes 2 to total degree.
  const auto num_edges = static_cast<EdgeId>(k * num_nodes / 2.0);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    const auto a = static_cast<NodeId>(rng.uniform_index(num_nodes));
    const auto b = static_cast<NodeId>(rng.uniform_index(num_nodes));
    edges.push_back({a, b, static_cast<std::uint32_t>(1 + rng.uniform_index(100))});
  }
  return CsrGraph::from_edges(num_nodes, edges, /*symmetrize=*/true);
}

CsrGraph rmat(std::uint32_t scale, double edge_factor, std::uint64_t seed) {
  Rng rng{seed};
  const NodeId n = NodeId{1} << scale;
  const auto num_edges = static_cast<EdgeId>(edge_factor * n);
  constexpr double kA = 0.45, kB = 0.22, kC = 0.22;
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    NodeId src = 0, dst = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      const bool src_hi = r >= kA + kB;            // quadrants c, d
      const bool dst_hi = (r >= kA && r < kA + kB) // quadrant b
                          || r >= kA + kB + kC;    // quadrant d
      src = (src << 1) | NodeId{src_hi};
      dst = (dst << 1) | NodeId{dst_hi};
    }
    edges.push_back({src, dst, static_cast<std::uint32_t>(1 + rng.uniform_index(100))});
  }
  return CsrGraph::from_edges(n, edges, /*symmetrize=*/false);
}

CsrGraph triangular_mesh(std::uint32_t width, std::uint32_t height,
                         std::uint64_t seed) {
  Rng rng{seed};
  const NodeId n = width * height;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 3);
  const auto id = [width](std::uint32_t x, std::uint32_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const auto weight = [&] {
        return static_cast<std::uint32_t>(1 + rng.uniform_index(10));
      };
      if (x + 1 < width) edges.push_back({id(x, y), id(x + 1, y), weight()});
      if (y + 1 < height) edges.push_back({id(x, y), id(x, y + 1), weight()});
      // Alternate diagonal direction per row parity, as in a structured
      // triangulation of a jittered grid.
      if (x + 1 < width && y + 1 < height) {
        if ((x + y) % 2 == 0) {
          edges.push_back({id(x, y), id(x + 1, y + 1), weight()});
        } else {
          edges.push_back({id(x + 1, y), id(x, y + 1), weight()});
        }
      }
    }
  }
  return CsrGraph::from_edges(n, edges, /*symmetrize=*/true);
}

}  // namespace repro::graph
