// Compressed-sparse-row graph representation.
//
// All graph workloads (the five BFS implementations, SSSP variants, MST,
// points-to analysis, survey propagation) operate on this structure, just
// as the original benchmark suites share graph-file inputs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace repro::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint64_t;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t weight = 1;
};

/// Immutable CSR adjacency structure with optional edge weights.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list. If `symmetrize` is set, every edge is also
  /// inserted in the reverse direction (road networks and SHOC's random
  /// graphs are undirected). Self-loops are kept; duplicate edges are kept
  /// (benchmarks do not deduplicate either).
  static CsrGraph from_edges(NodeId num_nodes, std::span<const Edge> edges,
                             bool symmetrize);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  EdgeId num_edges() const noexcept { return static_cast<EdgeId>(adjacency_.size()); }

  std::span<const NodeId> neighbors(NodeId n) const noexcept {
    return {adjacency_.data() + row_offsets_[n],
            adjacency_.data() + row_offsets_[n + 1]};
  }
  std::span<const std::uint32_t> weights(NodeId n) const noexcept {
    return {edge_weights_.data() + row_offsets_[n],
            edge_weights_.data() + row_offsets_[n + 1]};
  }

  EdgeId degree(NodeId n) const noexcept {
    return row_offsets_[n + 1] - row_offsets_[n];
  }

  std::span<const EdgeId> row_offsets() const noexcept { return row_offsets_; }

  double average_degree() const noexcept {
    return num_nodes_ == 0 ? 0.0
                           : static_cast<double>(num_edges()) / num_nodes_;
  }

  /// Maximum out-degree; drives load-imbalance estimates for one-node-per-
  /// thread kernels.
  EdgeId max_degree() const noexcept;

  /// Coefficient of variation of the degree distribution.
  double degree_cv() const noexcept;

 private:
  NodeId num_nodes_ = 0;
  std::vector<EdgeId> row_offsets_;       // size num_nodes_ + 1
  std::vector<NodeId> adjacency_;         // size num_edges
  std::vector<std::uint32_t> edge_weights_;  // parallel to adjacency_
};

}  // namespace repro::graph
