#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace repro::graph {

CsrGraph CsrGraph::from_edges(NodeId num_nodes, std::span<const Edge> edges,
                              bool symmetrize) {
  CsrGraph g;
  g.num_nodes_ = num_nodes;
  g.row_offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);

  const auto count_edge = [&](NodeId src) {
    assert(src < num_nodes);
    ++g.row_offsets_[static_cast<std::size_t>(src) + 1];
  };
  for (const Edge& e : edges) {
    count_edge(e.src);
    if (symmetrize && e.src != e.dst) count_edge(e.dst);
  }
  for (std::size_t i = 1; i < g.row_offsets_.size(); ++i) {
    g.row_offsets_[i] += g.row_offsets_[i - 1];
  }

  const EdgeId total = g.row_offsets_.back();
  g.adjacency_.resize(total);
  g.edge_weights_.resize(total);
  std::vector<EdgeId> cursor(g.row_offsets_.begin(), g.row_offsets_.end() - 1);
  const auto place = [&](NodeId src, NodeId dst, std::uint32_t w) {
    const EdgeId slot = cursor[src]++;
    g.adjacency_[slot] = dst;
    g.edge_weights_[slot] = w;
  };
  for (const Edge& e : edges) {
    place(e.src, e.dst, e.weight);
    if (symmetrize && e.src != e.dst) place(e.dst, e.src, e.weight);
  }
  return g;
}

EdgeId CsrGraph::max_degree() const noexcept {
  EdgeId best = 0;
  for (NodeId n = 0; n < num_nodes_; ++n) best = std::max(best, degree(n));
  return best;
}

double CsrGraph::degree_cv() const noexcept {
  if (num_nodes_ == 0) return 0.0;
  const double avg = average_degree();
  if (avg == 0.0) return 0.0;
  double ss = 0.0;
  for (NodeId n = 0; n < num_nodes_; ++n) {
    const double d = static_cast<double>(degree(n)) - avg;
    ss += d * d;
  }
  return std::sqrt(ss / num_nodes_) / avg;
}

}  // namespace repro::graph
