#include "graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>

#include "util/rng.hpp"

namespace repro::graph {

BfsProfile bfs(const CsrGraph& g, NodeId source) {
  BfsProfile p;
  p.levels.assign(g.num_nodes(), kUnreached);
  std::vector<NodeId> frontier{source};
  p.levels[source] = 0;
  p.reached = 1;
  while (!frontier.empty()) {
    std::uint64_t edges = 0;
    std::vector<NodeId> next;
    for (const NodeId n : frontier) {
      const auto nbrs = g.neighbors(n);
      edges += nbrs.size();
      for (const NodeId m : nbrs) {
        if (p.levels[m] == kUnreached) {
          p.levels[m] = p.levels[n] + 1;
          next.push_back(m);
        }
      }
    }
    p.frontier_nodes.push_back(frontier.size());
    p.frontier_edges.push_back(edges);
    p.reached += next.size();
    frontier = std::move(next);
  }
  p.depth = static_cast<std::uint32_t>(p.frontier_nodes.size());
  return p;
}

NodeId best_source(const CsrGraph& g) {
  NodeId best = 0;
  EdgeId best_degree = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    if (g.degree(n) > best_degree) {
      best_degree = g.degree(n);
      best = n;
    }
  }
  return best;
}

namespace {

/// Shared driver for topology-driven fixpoints: every sweep visits all
/// nodes and relaxes from neighbours. Sweep direction alternates
/// (serpentine order), mimicking how GPU thread blocks are issued in
/// varying order between grid launches. A neighbour value written earlier
/// in the *same* sweep is seen with probability `visibility` (per-edge
/// deterministic coin), otherwise the value from the previous sweep's
/// snapshot is used. High visibility therefore approaches Gauss-Seidel
/// propagation (few sweeps); zero visibility is pure Jacobi (sweep count
/// equals the graph's value depth).
SweepProfile topology_fixpoint(const CsrGraph& g, NodeId source, double visibility,
                               std::uint64_t seed, bool weighted) {
  SweepProfile prof;
  std::vector<std::uint32_t> value(g.num_nodes(), kUnreached);
  value[source] = 0;
  std::vector<std::uint32_t> snapshot = value;
  bool changed = true;
  while (changed) {
    changed = false;
    snapshot = value;
    std::uint64_t updates = 0;
    const bool forward = (prof.sweeps % 2) == 0;
    for (NodeId step_idx = 0; step_idx < g.num_nodes(); ++step_idx) {
      const NodeId n = forward ? step_idx : g.num_nodes() - 1 - step_idx;
      const auto nbrs = g.neighbors(n);
      const auto wts = g.weights(n);
      std::uint32_t best = value[n];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId m = nbrs[i];
        // "Earlier in this sweep" = visited before n in this direction;
        // only then can the fresh value differ from the snapshot.
        const bool earlier = forward ? m < n : m > n;
        std::uint32_t seen = snapshot[m];
        if (earlier && value[m] != snapshot[m]) {
          const double coin = util::hash_unit(
              n, m ^ (static_cast<std::uint64_t>(prof.sweeps) << 32), seed);
          if (coin < visibility) seen = value[m];
        }
        if (seen == kUnreached) continue;
        const std::uint32_t step = weighted ? wts[i] : 1u;
        if (seen + step < best) best = seen + step;
      }
      if (best < value[n]) {
        value[n] = best;
        ++updates;
        changed = true;
      }
    }
    if (changed) {
      prof.updates_per_sweep.push_back(updates);
      ++prof.sweeps;
    }
    // Safety net: a monotone fixpoint on finite weights must converge, but
    // cap sweeps defensively so a modelling bug cannot hang the harness.
    if (prof.sweeps > 8 * g.num_nodes()) break;
  }
  prof.values = std::move(value);
  return prof;
}

}  // namespace

SweepProfile topology_bfs(const CsrGraph& g, NodeId source, double visibility,
                          std::uint64_t seed) {
  return topology_fixpoint(g, source, visibility, seed, /*weighted=*/false);
}

SweepProfile topology_sssp(const CsrGraph& g, NodeId source, double visibility,
                           std::uint64_t seed) {
  return topology_fixpoint(g, source, visibility, seed, /*weighted=*/true);
}

std::vector<std::uint64_t> dijkstra(const CsrGraph& g, NodeId source) {
  constexpr auto kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dist(g.num_nodes(), kInf);
  using Item = std::pair<std::uint64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[source] = 0;
  pq.emplace(0, source);
  while (!pq.empty()) {
    const auto [d, n] = pq.top();
    pq.pop();
    if (d != dist[n]) continue;
    const auto nbrs = g.neighbors(n);
    const auto wts = g.weights(n);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint64_t nd = d + wts[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        pq.emplace(nd, nbrs[i]);
      }
    }
  }
  return dist;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
  }
  NodeId find(NodeId x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  bool unite(NodeId a, NodeId b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent_[b] = a;
    return true;
  }

 private:
  std::vector<NodeId> parent_;
};

}  // namespace

BoruvkaProfile boruvka(const CsrGraph& g) {
  BoruvkaProfile prof;
  UnionFind uf{g.num_nodes()};
  std::uint64_t components = connected_components(g) == 0
                                 ? 0
                                 : g.num_nodes();  // counts singletons too
  // Track only components that can still merge; isolated nodes never do.
  bool merged = true;
  while (merged) {
    merged = false;
    prof.components_per_round.push_back(components);
    // Find minimum outgoing edge per component (scans all edges, exactly
    // like the benchmark's edge-relaxation kernels).
    struct Best {
      std::uint64_t weight = std::numeric_limits<std::uint64_t>::max();
      NodeId src = 0, dst = 0;
    };
    std::vector<Best> best(g.num_nodes());
    std::uint64_t scanned = 0;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      const NodeId cn = uf.find(n);
      const auto nbrs = g.neighbors(n);
      const auto wts = g.weights(n);
      scanned += nbrs.size();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId cm = uf.find(nbrs[i]);
        if (cn == cm) continue;
        // Tie-break on (weight, src, dst) for determinism.
        Best& b = best[cn];
        const std::uint64_t w = wts[i];
        if (w < b.weight || (w == b.weight && (n < b.src || (n == b.src && nbrs[i] < b.dst)))) {
          b = Best{w, n, nbrs[i]};
        }
      }
    }
    prof.edges_scanned_per_round.push_back(scanned);
    for (NodeId c = 0; c < g.num_nodes(); ++c) {
      const Best& b = best[c];
      if (b.weight == std::numeric_limits<std::uint64_t>::max()) continue;
      if (uf.unite(b.src, b.dst)) {
        prof.mst_weight += b.weight;
        ++prof.mst_edges;
        --components;
        merged = true;
      }
    }
  }
  return prof;
}

std::uint64_t connected_components(const CsrGraph& g) {
  if (g.num_nodes() == 0) return 0;
  UnionFind uf{g.num_nodes()};
  std::uint64_t components = g.num_nodes();
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    for (const NodeId m : g.neighbors(n)) {
      if (uf.unite(n, m)) --components;
    }
  }
  return components;
}

}  // namespace repro::graph
