// Synthetic graph generators standing in for the paper's graph inputs.
//
// paper input                      -> generator (documented scale factor)
// USA road maps (2.7M/6M/24M nodes)-> roadmap(): near-planar lattice with
//                                     perturbed diagonals: avg degree ~2.5,
//                                     huge diameter, uniform weights 1..1000
// SHOC random k-way graph          -> random_kway(): uniform random edges,
//                                     low diameter
// R-BFS "random graphs 100k/1m"    -> random_kway() with k = 6
// R-MAT-style skewed graphs        -> rmat(): power-law-ish degrees used by
//                                     the points-to constraint generator
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace repro::graph {

/// Road-network-like graph: w x h grid, 4-neighbour connectivity with a
/// fraction of edges rewired to nearby diagonal nodes and a small fraction
/// of nodes deleted, giving the low-degree high-diameter structure of the
/// DIMACS road maps used by LonestarGPU. Undirected. Weights uniform in
/// [1, 1000] like DIMACS travel times.
CsrGraph roadmap(std::uint32_t width, std::uint32_t height, std::uint64_t seed);

/// Uniform random undirected graph with `num_nodes` nodes and average
/// degree `k` (SHOC's "undirected random k-way graph"; Rodinia's random
/// graph inputs). Low diameter (~log n).
CsrGraph random_kway(NodeId num_nodes, double k, std::uint64_t seed);

/// R-MAT generator (a=0.45, b=0.22, c=0.22, d=0.11 fixed) with `scale`
/// (2^scale nodes) and `edge_factor` edges per node. Directed. Produces the
/// skewed degree distributions typical of constraint graphs (PTA) and the
/// "suffix-tree-ish" fan-out used by MUM.
CsrGraph rmat(std::uint32_t scale, double edge_factor, std::uint64_t seed);

/// 2-D Delaunay-ish triangular mesh connectivity: jittered grid where each
/// interior node links to 6 neighbours. Used by DMR's input meshes.
CsrGraph triangular_mesh(std::uint32_t width, std::uint32_t height,
                         std::uint64_t seed);

}  // namespace repro::graph
