// Global workload registry.
//
// Suites register their programs at static-initialization time (via the
// RegisterWorkload helper); the study harness and the bench binaries look
// programs up by name or enumerate whole suites.
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "workloads/workload.hpp"

namespace repro::workloads {

class Registry {
 public:
  /// The process-wide registry instance.
  static Registry& instance();

  void add(std::unique_ptr<Workload> workload);

  /// All workloads in registration order.
  std::vector<const Workload*> all() const;

  /// All workloads belonging to `suite`, in registration order.
  std::vector<const Workload*> by_suite(std::string_view suite) const;

  /// Lookup by program name; nullptr if absent.
  const Workload* find(std::string_view name) const;

  /// Distinct suite names in first-seen order.
  std::vector<std::string_view> suites() const;

  std::size_t size() const noexcept { return workloads_.size(); }

 private:
  std::vector<std::unique_ptr<Workload>> workloads_;
};

}  // namespace repro::workloads

// Populates the global registry with all 34 programs. Defined in
// src/suites/register_all.cpp (explicit registration instead of static
// initializers, which static libraries would silently drop). Idempotent.
namespace repro::suites {
void register_all_workloads();
}
