// Execution context passed to workloads when they build a launch trace.
//
// Irregular codes need to know the GPU configuration because their
// *algorithmic* behaviour is timing-dependent (paper §V.A.1): how far a
// relaxation propagates within one topology-driven sweep depends on the
// relative speed of compute and memory. Regular codes ignore everything
// except the structural seed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace repro::workloads {

struct ExecContext {
  double core_mhz = 705.0;
  double mem_mhz = 2600.0;
  bool ecc = false;
  /// Seed for data-structure generation (graph topologies, random inputs).
  /// Identical across configs so all configs see the same input data.
  std::uint64_t structural_seed = 0x5eedULL;

  /// Memory-to-core clock ratio, normalized to 1.0 at the default
  /// configuration (705 / 2600 MHz).
  double mem_core_ratio() const noexcept {
    constexpr double kDefaultRatio = 2600.0 / 705.0;
    return (mem_mhz / core_mhz) / kDefaultRatio;
  }

  /// Intra-sweep update visibility for topology-driven fixpoints.
  /// `base` is the workload's visibility at the default clocks and `gamma`
  /// its sensitivity to the memory/core clock ratio: a positive gamma means
  /// faster relative memory makes updates visible sooner (fewer sweeps).
  /// Clamped away from 0/1 so fixpoints always terminate.
  double visibility(double base, double gamma) const noexcept {
    double v = base;
    const double r = mem_core_ratio();
    if (r > 0.0) {
      v = base * std::pow(r, gamma);
    }
    return std::clamp(v, 0.02, 0.98);
  }
};

}  // namespace repro::workloads
