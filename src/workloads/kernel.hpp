// Kernel-launch descriptors and launch traces.
#pragma once

#include <string>
#include <vector>

#include "workloads/mix.hpp"

namespace repro::workloads {

/// One GPU kernel launch. `blocks` is a double so that workloads can emit
/// paper-scale grids derived from reduced-scale host runs.
struct KernelLaunch {
  std::string name;
  double blocks = 1.0;
  int threads_per_block = 256;
  int regs_per_thread = 32;
  int shared_bytes_per_block = 0;
  InstructionMix mix;

  /// Work skew across blocks: max block work / mean block work. 1.0 means
  /// perfectly balanced. The timing engine amortizes this over waves.
  double imbalance = 1.0;

  /// Host (CPU) time spent before this launch; the GPU idles (at driver
  /// "tail" power) during it.
  double host_gap_before_s = 0.0;

  double total_threads() const noexcept {
    return blocks * static_cast<double>(threads_per_block);
  }
};

using LaunchTrace = std::vector<KernelLaunch>;

/// Convenience totals over a trace (used by tests and per-item metrics).
struct TraceTotals {
  double kernel_launches = 0.0;
  double threads = 0.0;
  double global_accesses = 0.0;
  double arithmetic_ops = 0.0;
};

inline TraceTotals totals(const LaunchTrace& trace) {
  TraceTotals t;
  for (const KernelLaunch& k : trace) {
    t.kernel_launches += 1.0;
    t.threads += k.total_threads();
    t.global_accesses += k.total_threads() * k.mix.global_accesses();
    t.arithmetic_ops += k.total_threads() * k.mix.arithmetic_ops();
  }
  return t;
}

}  // namespace repro::workloads
