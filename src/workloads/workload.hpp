// Abstract benchmark-program interface.
//
// Each of the paper's 34 programs implements this interface in
// src/suites/<suite>/. A workload owns its input descriptions (Table 1)
// and, given an input index and an execution context, emits the kernel
// launch trace the original CUDA binary would have produced.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "workloads/context.hpp"
#include "workloads/kernel.hpp"

namespace repro::workloads {

/// The paper's behaviour classes (§V, §VI).
enum class Boundedness { kCompute, kMemory, kBalanced };
enum class Regularity { kRegular, kIrregular };

/// A named program input (Table 1). `scale_note` documents the paper input
/// and the simulation scale factor per DESIGN.md §6.
struct InputSpec {
  std::string name;
  std::string scale_note;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Short program name as used in the paper's tables (e.g. "BH", "L-BFS").
  virtual std::string_view name() const = 0;

  /// Benchmark suite ("LonestarGPU", "Parboil", "Rodinia", "SHOC",
  /// "CUDA SDK").
  virtual std::string_view suite() const = 0;

  /// Number of distinct global kernels (Table 1's #K column).
  virtual int num_global_kernels() const = 0;

  virtual Boundedness boundedness() const = 0;
  virtual Regularity regularity() const = 0;

  virtual std::vector<InputSpec> inputs() const = 0;

  /// Non-empty for alternate implementations of another program (paper
  /// §V.B.1, e.g. the "atomic"/"wla" variants of L-BFS). Variants are
  /// excluded from the suite-level figures and compared in Table 3.
  virtual std::string_view variant() const { return {}; }

  /// Builds the launch trace for `input_index` under `ctx`. Deterministic
  /// in (input_index, ctx).
  virtual LaunchTrace trace(std::size_t input_index, const ExecContext& ctx) const = 0;

  /// Optional multiplicative power adjustment applied when ECC is enabled;
  /// 1.0 for all programs except documented anomalies (NB, see DESIGN.md §7).
  virtual double ecc_power_adjustment() const { return 1.0; }

  /// Items processed on a given input for per-item metrics (Table 4):
  /// vertices/edges for graph codes, 0 when not applicable.
  struct ItemCounts {
    double vertices = 0.0;
    double edges = 0.0;
  };
  virtual ItemCounts items(std::size_t /*input_index*/) const { return {}; }
};

}  // namespace repro::workloads
