#include "workloads/registry.hpp"

#include <algorithm>

namespace repro::workloads {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(std::unique_ptr<Workload> workload) {
  workloads_.push_back(std::move(workload));
}

std::vector<const Workload*> Registry::all() const {
  std::vector<const Workload*> out;
  out.reserve(workloads_.size());
  for (const auto& w : workloads_) out.push_back(w.get());
  return out;
}

std::vector<const Workload*> Registry::by_suite(std::string_view suite) const {
  std::vector<const Workload*> out;
  for (const auto& w : workloads_) {
    if (w->suite() == suite) out.push_back(w.get());
  }
  return out;
}

const Workload* Registry::find(std::string_view name) const {
  for (const auto& w : workloads_) {
    if (w->name() == name) return w.get();
  }
  return nullptr;
}

std::vector<std::string_view> Registry::suites() const {
  std::vector<std::string_view> out;
  for (const auto& w : workloads_) {
    if (std::find(out.begin(), out.end(), w->suite()) == out.end()) {
      out.push_back(w->suite());
    }
  }
  return out;
}

}  // namespace repro::workloads
