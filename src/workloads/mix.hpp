// Per-kernel instruction and memory-behaviour description.
//
// A workload summarizes each kernel launch by the *average dynamic
// behaviour of one thread* plus warp-level effects (divergence, coalescing,
// bank conflicts). The timing engine (src/sim) turns these into cycles and
// the power model (src/power) turns the resulting event counts into watts.
// Counts are doubles because workloads emit paper-scale grids from
// reduced-scale host executions (see DESIGN.md §6).
#pragma once

namespace repro::workloads {

struct InstructionMix {
  // Arithmetic lane operations executed per thread.
  double fp32 = 0.0;      // single-precision FLOPs (FMA counts as 2)
  double fp64 = 0.0;      // double-precision FLOPs

  // Fraction of floating-point work issued as fused multiply-adds: an FMA
  // retires 2 FLOPs per issue slot, so throughput-bound time divides by
  // (1 + fma_fraction) while the energy (per FLOP) does not - FMA-dense
  // codes (MaxFlops, SGEMM) draw the highest power.
  double fma_fraction = 0.0;
  double int_alu = 0.0;   // integer/logic/address arithmetic
  double sfu = 0.0;       // special-function ops (rsqrt, sin, exp, ...)

  // Global-memory word accesses per thread (4-byte words unless a kernel
  // states otherwise via bytes_per_access).
  double global_loads = 0.0;
  double global_stores = 0.0;
  double bytes_per_access = 4.0;

  // Coalescing: average number of 128-byte transactions generated per
  // warp-level access (1.0 = perfectly coalesced, 32.0 = fully scattered).
  double load_transactions_per_access = 1.0;
  double store_transactions_per_access = 1.0;

  // Fraction of global transactions served by the L2 cache.
  double l2_hit_rate = 0.0;

  // Shared-memory warp accesses per thread and the average replay factor
  // due to bank conflicts (1.0 = conflict-free).
  double shared_accesses = 0.0;
  double shared_conflict_factor = 1.0;

  // Global atomics per thread and their serialization factor (average
  // number of conflicting lanes per atomic).
  double atomics = 0.0;
  double atomic_contention = 1.0;

  // __syncthreads() per thread.
  double syncs = 0.0;

  // Branch divergence: average issue-replay multiplier (>= 1). A warp whose
  // 32 threads split into 4 divergent subsets has factor ~4 on the
  // divergent portion; workloads report the blended average.
  double divergence = 1.0;

  // Fraction of lanes doing useful work per issued instruction (predication
  // and partial warps). Affects lane-op counts but not issue counts.
  double active_lane_fraction = 1.0;

  // Memory-level parallelism: average outstanding global transactions per
  // resident warp; bounds latency-limited throughput.
  double mlp = 4.0;

  /// Total arithmetic lane-ops per thread.
  double arithmetic_ops() const noexcept { return fp32 + fp64 + int_alu + sfu; }

  /// Total global word accesses per thread.
  double global_accesses() const noexcept { return global_loads + global_stores; }
};

}  // namespace repro::workloads
