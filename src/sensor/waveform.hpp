// True-power waveform synthesis.
//
// Builds the continuous power-draw timeline of one program run from the
// simulator's phase list: an idle lead-in, one level per kernel phase,
// driver "tail" power during host gaps and after the last kernel (the
// driver keeps the GPU active for a while in case another kernel is
// launched - paper §IV.C / Fig. 1), and a final idle stretch.
//
// Fast-path invariant (DESIGN.md §10): every query accelerator here —
// Cursor, the indexed energy_j — is bit-identical to the straightforward
// reference arithmetic. The golden tests enforce this; if an optimization
// would require regenerating goldens, the optimization is wrong.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "power/model.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::sensor {

/// Piecewise-linear power segment: power ramps w0 -> w1 over [t0, t1).
/// A zero-length segment (t0 == t1) is legal and models an instantaneous
/// level change; queries never resolve inside it (see power_at).
struct Segment {
  double t0 = 0.0;
  double t1 = 0.0;
  double w0 = 0.0;
  double w1 = 0.0;
};

/// Timeline of segments ordered by time: both t0 and t1 must be
/// non-decreasing across the vector and t1 >= t0 within each segment
/// (asserted in debug builds). `synthesize` always produces contiguous
/// segments satisfying this.
class Waveform {
 public:
  Waveform() = default;
  explicit Waveform(std::vector<Segment> segments);

  /// Monotone segment iterator: amortized O(1) power lookups for
  /// non-decreasing query times, bit-identical to power_at (same
  /// interpolation arithmetic, the search is replaced by a forward scan
  /// that can never skip the segment power_at's binary search would
  /// select). A full fixed-dt sweep is O(N + S) instead of O(N log S).
  /// Queries MUST be non-decreasing between reset() calls; the waveform
  /// must outlive the cursor.
  class Cursor {
   public:
    double power_at(double t) noexcept {
      const std::vector<Segment>& segs = w_->segments_;
      if (segs.empty()) return 0.0;
      if (t <= segs.front().t0) return segs.front().w0;
      if (t >= segs.back().t1) return segs.back().w1;
      while (pos_ < segs.size() && t >= segs[pos_].t1) ++pos_;
      if (pos_ >= segs.size()) return segs.back().w1;
      const Segment& s = segs[pos_];
      const double span = s.t1 - s.t0;
      if (span <= 0.0) return s.w0;
      const double frac = std::clamp((t - s.t0) / span, 0.0, 1.0);
      return s.w0 + frac * (s.w1 - s.w0);
    }

    void reset() noexcept { pos_ = 0; }

   private:
    friend class Waveform;
    explicit Cursor(const Waveform& w) noexcept : w_(&w) {}
    const Waveform* w_;
    std::size_t pos_ = 0;
  };

  Cursor cursor() const noexcept { return Cursor{*this}; }

  /// Instantaneous true power at time t (clamped to the timeline ends).
  /// O(log S) binary search; use a Cursor for monotone sweeps.
  double power_at(double t) const;

  /// Integral of power over [a, b] in joules. Locates the overlapping
  /// segment range by binary search and serves fully-covered segments from
  /// the per-segment energies precomputed at construction, so a query
  /// costs O(log S + overlap) instead of rescanning every segment.
  /// Bit-identical to the linear reference scan: the overlapping segments
  /// are accumulated in the same order with the same per-segment
  /// arithmetic (prefix-sum differencing is deliberately avoided — FP
  /// addition is not associative and would shift the last bits).
  double energy_j(double a, double b) const;

  double duration() const noexcept {
    return segments_.empty() ? 0.0 : segments_.back().t1;
  }

  const std::vector<Segment>& segments() const noexcept { return segments_; }

  /// Rebuilds the timeline in place. Together with release_segments this
  /// lets a caller recycle segment/energy storage across repetitions
  /// instead of reallocating per run.
  void assign(std::vector<Segment>&& segments);

  /// Takes back the segment storage (the waveform becomes empty).
  std::vector<Segment> release_segments() noexcept;

 private:
  void reindex();

  std::vector<Segment> segments_;
  std::vector<double> segment_energy_j_;  // full-span energy per segment
};

struct WaveformOptions {
  double lead_in_idle_s = 2.0;   // idle before the program starts
  /// CUDA context creation / allocations raise the clocks before the first
  /// kernel; the sensor is already in its 10 Hz mode when kernels begin.
  double init_phase_s = 0.9;
  double trail_idle_s = 4.0;     // idle recorded after the tail decays
};

/// Builds the run waveform. `ecc_adjust` is the workload's ECC power
/// anomaly factor (see Workload::ecc_power_adjustment).
Waveform synthesize(const sim::TraceResult& trace, const sim::GpuConfig& config,
                    const power::PowerModel& model, double ecc_adjust = 1.0,
                    const WaveformOptions& options = {});

/// In-place variant for the repetition loop: rebuilds `out` reusing its
/// storage and evaluates phase powers through the per-experiment memo
/// (power::PhasePowerMemo), which binds (model, config, ecc_adjust).
/// Bit-identical to `synthesize` with the same bindings.
void synthesize_into(Waveform& out, const sim::TraceResult& trace,
                     power::PhasePowerMemo& memo,
                     const WaveformOptions& options = {});

}  // namespace repro::sensor
