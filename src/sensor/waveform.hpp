// True-power waveform synthesis.
//
// Builds the continuous power-draw timeline of one program run from the
// simulator's phase list: an idle lead-in, one level per kernel phase,
// driver "tail" power during host gaps and after the last kernel (the
// driver keeps the GPU active for a while in case another kernel is
// launched - paper §IV.C / Fig. 1), and a final idle stretch.
#pragma once

#include <vector>

#include "power/model.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::sensor {

/// Piecewise-linear power segment: power ramps w0 -> w1 over [t0, t1).
struct Segment {
  double t0 = 0.0;
  double t1 = 0.0;
  double w0 = 0.0;
  double w1 = 0.0;
};

class Waveform {
 public:
  explicit Waveform(std::vector<Segment> segments);

  /// Instantaneous true power at time t (clamped to the timeline ends).
  double power_at(double t) const;

  /// Integral of power over [a, b] in joules.
  double energy_j(double a, double b) const;

  double duration() const noexcept {
    return segments_.empty() ? 0.0 : segments_.back().t1;
  }

  const std::vector<Segment>& segments() const noexcept { return segments_; }

 private:
  std::vector<Segment> segments_;
};

struct WaveformOptions {
  double lead_in_idle_s = 2.0;   // idle before the program starts
  /// CUDA context creation / allocations raise the clocks before the first
  /// kernel; the sensor is already in its 10 Hz mode when kernels begin.
  double init_phase_s = 0.9;
  double trail_idle_s = 4.0;     // idle recorded after the tail decays
};

/// Builds the run waveform. `ecc_adjust` is the workload's ECC power
/// anomaly factor (see Workload::ecc_power_adjustment).
Waveform synthesize(const sim::TraceResult& trace, const sim::GpuConfig& config,
                    const power::PowerModel& model, double ecc_adjust = 1.0,
                    const WaveformOptions& options = {});

}  // namespace repro::sensor
