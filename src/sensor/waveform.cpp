#include "sensor/waveform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.hpp"

namespace repro::sensor {

Waveform::Waveform(std::vector<Segment> segments) : segments_(std::move(segments)) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < segments_.size(); ++i) {
    assert(segments_[i].t0 >= segments_[i - 1].t0);
  }
#endif
}

double Waveform::power_at(double t) const {
  if (segments_.empty()) return 0.0;
  if (t <= segments_.front().t0) return segments_.front().w0;
  if (t >= segments_.back().t1) return segments_.back().w1;
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.t1; });
  if (it == segments_.end()) return segments_.back().w1;
  const Segment& s = *it;
  const double span = s.t1 - s.t0;
  if (span <= 0.0) return s.w0;
  const double frac = std::clamp((t - s.t0) / span, 0.0, 1.0);
  return s.w0 + frac * (s.w1 - s.w0);
}

double Waveform::energy_j(double a, double b) const {
  if (b < a) std::swap(a, b);
  double total = 0.0;
  for (const Segment& s : segments_) {
    const double lo = std::max(a, s.t0);
    const double hi = std::min(b, s.t1);
    if (hi <= lo) continue;
    // Interpolate within this segment (power_at would resolve boundary
    // points to the neighbouring segment).
    const double span = s.t1 - s.t0;
    const auto at = [&](double t) {
      if (span <= 0.0) return s.w0;
      return s.w0 + (t - s.t0) / span * (s.w1 - s.w0);
    };
    total += 0.5 * (at(lo) + at(hi)) * (hi - lo);
  }
  return total;
}

Waveform synthesize(const sim::TraceResult& trace, const sim::GpuConfig& config,
                    const power::PowerModel& model, double ecc_adjust,
                    const WaveformOptions& options) {
  obs::Span span("power-synthesis");
  span.arg("config", config.name)
      .arg("phases", static_cast<std::uint64_t>(trace.phases.size()));
  std::vector<Segment> segments;
  segments.reserve(trace.phases.size() * 2 + 4);
  const double idle = model.static_power_w(config);
  const double gap_power = model.tail_power_w(config);

  double t = 0.0;
  const auto push = [&](double duration, double w0, double w1) {
    if (duration <= 0.0) return;
    segments.push_back({t, t + duration, w0, w1});
    t += duration;
  };

  push(options.lead_in_idle_s, idle, idle);
  push(options.init_phase_s, gap_power, gap_power);
  for (const sim::Phase& phase : trace.phases) {
    // Host gaps: the driver holds the GPU in a raised power state.
    push(phase.host_gap_before_s, gap_power, gap_power);
    const power::PhasePower p =
        model.phase_power(phase.activity, phase.duration_s, config, ecc_adjust);
    push(phase.duration_s, p.total_w, p.total_w);
  }
  // Driver tail: exponential decay approximated by three linear pieces.
  const double tau = model.tail_decay_s();
  double w = gap_power;
  for (int i = 0; i < 3; ++i) {
    const double next = idle + (w - idle) * std::exp(-1.0);
    push(tau / 2.0, w, next);
    w = next;
  }
  push(options.trail_idle_s, idle, idle);
  return Waveform{std::move(segments)};
}

}  // namespace repro::sensor
