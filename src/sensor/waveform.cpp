#include "sensor/waveform.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "obs/trace.hpp"

namespace repro::sensor {

namespace {

// Trapezoid over [lo, hi] within segment `s`. This is THE energy
// arithmetic: energy_j, the precomputed per-segment energies and the
// test oracles all evaluate exactly this expression, which is what makes
// the indexed path bit-identical to the linear reference scan.
inline double partial_energy(const Segment& s, double lo, double hi) {
  const double span = s.t1 - s.t0;
  const auto at = [&](double t) {
    if (span <= 0.0) return s.w0;
    return s.w0 + (t - s.t0) / span * (s.w1 - s.w0);
  };
  return 0.5 * (at(lo) + at(hi)) * (hi - lo);
}

}  // namespace

Waveform::Waveform(std::vector<Segment> segments)
    : segments_(std::move(segments)) {
  reindex();
}

void Waveform::assign(std::vector<Segment>&& segments) {
  segments_ = std::move(segments);
  reindex();
}

std::vector<Segment> Waveform::release_segments() noexcept {
  segment_energy_j_.clear();
  return std::exchange(segments_, {});
}

void Waveform::reindex() {
#ifndef NDEBUG
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    assert(segments_[i].t1 >= segments_[i].t0);
    if (i > 0) {
      assert(segments_[i].t0 >= segments_[i - 1].t0);
      assert(segments_[i].t1 >= segments_[i - 1].t1);
    }
  }
#endif
  segment_energy_j_.clear();
  segment_energy_j_.reserve(segments_.size());
  for (const Segment& s : segments_) {
    segment_energy_j_.push_back(partial_energy(s, s.t0, s.t1));
  }
}

double Waveform::power_at(double t) const {
  if (segments_.empty()) return 0.0;
  if (t <= segments_.front().t0) return segments_.front().w0;
  if (t >= segments_.back().t1) return segments_.back().w1;
  // Binary search for the segment containing t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.t1; });
  if (it == segments_.end()) return segments_.back().w1;
  const Segment& s = *it;
  const double span = s.t1 - s.t0;
  if (span <= 0.0) return s.w0;
  const double frac = std::clamp((t - s.t0) / span, 0.0, 1.0);
  return s.w0 + frac * (s.w1 - s.w0);
}

double Waveform::energy_j(double a, double b) const {
  if (b < a) std::swap(a, b);
  // First segment that can overlap [a, b]: everything before it has
  // t1 <= a and contributes nothing; t0/t1 monotonicity (see class
  // invariant) makes the range partitioned for the binary search.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), a,
      [](double value, const Segment& s) { return value < s.t1; });
  double total = 0.0;
  for (auto i = static_cast<std::size_t>(it - segments_.begin());
       i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    if (s.t0 >= b) break;  // t0 monotone: no later segment overlaps either
    // Interpolate within this segment (power_at would resolve boundary
    // points to the neighbouring segment).
    const double lo = std::max(a, s.t0);
    const double hi = std::min(b, s.t1);
    if (hi <= lo) continue;
    // Fully-covered segments reuse the energy precomputed at construction
    // (same expression, same bits); clipped edges interpolate in place.
    total += (lo == s.t0 && hi == s.t1) ? segment_energy_j_[i]
                                        : partial_energy(s, lo, hi);
  }
  return total;
}

Waveform synthesize(const sim::TraceResult& trace, const sim::GpuConfig& config,
                    const power::PowerModel& model, double ecc_adjust,
                    const WaveformOptions& options) {
  power::PhasePowerMemo memo{model, config, ecc_adjust};
  Waveform out;
  synthesize_into(out, trace, memo, options);
  return out;
}

void synthesize_into(Waveform& out, const sim::TraceResult& trace,
                     power::PhasePowerMemo& memo,
                     const WaveformOptions& options) {
  obs::Span span("power-synthesis");
  span.arg("config", memo.config().name)
      .arg("phases", static_cast<std::uint64_t>(trace.phases.size()));
  std::vector<Segment> segments = out.release_segments();
  segments.clear();
  segments.reserve(trace.phases.size() * 2 + 6);
  const double idle = memo.static_power_w();
  const double gap_power = memo.tail_power_w();

  double t = 0.0;
  const auto push = [&](double duration, double w0, double w1) {
    if (duration <= 0.0) return;
    segments.push_back({t, t + duration, w0, w1});
    t += duration;
  };

  push(options.lead_in_idle_s, idle, idle);
  push(options.init_phase_s, gap_power, gap_power);
  for (const sim::Phase& phase : trace.phases) {
    // Host gaps: the driver holds the GPU in a raised power state.
    push(phase.host_gap_before_s, gap_power, gap_power);
    const power::PhasePower p =
        memo.phase_power(phase.activity, phase.duration_s);
    push(phase.duration_s, p.total_w, p.total_w);
  }
  // Driver tail: exponential decay approximated by three linear pieces.
  const double tau = memo.model().tail_decay_s();
  double w = gap_power;
  for (int i = 0; i < 3; ++i) {
    const double next = idle + (w - idle) * std::exp(-1.0);
    push(tau / 2.0, w, next);
    w = next;
  }
  push(options.trail_idle_s, idle, idle);
  out.assign(std::move(segments));
}

}  // namespace repro::sensor
