// On-board power-sensor simulation (paper §IV.B-C).
//
// The K20's sensor has two behaviours this module reproduces:
//  1. A slow, capacitor-like response: the reading is a first-order
//     low-pass of the true power (time constant ~0.7 s; K20Power
//     compensates for it, see src/k20power).
//  2. Adaptive sampling: 1 Hz while the reading is below an activity gate,
//     10 Hz once it rises above. This is why low-power runs (notably most
//     programs at the 324 MHz configuration) produce too few samples to
//     analyze - the paper excludes them for exactly this reason.
#pragma once

#include <cstdint>
#include <vector>

#include "sensor/waveform.hpp"
#include "util/rng.hpp"

namespace repro::sensor {

struct Sample {
  double t = 0.0;  // seconds since recording start
  double w = 0.0;  // reported watts
};

struct SensorOptions {
  double lag_tau_s = 0.7;        // first-order response time constant
  double idle_period_s = 1.0;    // 1 Hz below the gate
  double active_period_s = 0.1;  // 10 Hz above the gate
  double gate_w = 31.0;          // reading level that switches to 10 Hz
  double noise_sigma_w = 0.35;   // gaussian read noise
  double quantum_w = 0.1;        // reporting quantization
  double integration_dt_s = 0.01;  // lag-filter integration step
};

class Sensor {
 public:
  explicit Sensor(const SensorOptions& options = {}) noexcept : opt_(options) {}

  /// Records a full run. `rng` drives read noise and the sampling phase
  /// offset (the sampler is not aligned with kernel starts, a genuine
  /// source of run-to-run variability for short runs).
  std::vector<Sample> record(const Waveform& waveform, util::Rng& rng) const;

  /// Same recording into a caller-owned buffer (cleared first), so the
  /// repetition loop reuses one allocation. The fixed-dt integration walks
  /// the waveform through a Waveform::Cursor — O(N + S) per sweep instead
  /// of a binary search per step — with bit-identical readings.
  void record_into(const Waveform& waveform, util::Rng& rng,
                   std::vector<Sample>& samples) const;

  const SensorOptions& options() const noexcept { return opt_; }

 private:
  SensorOptions opt_;
};

}  // namespace repro::sensor
