#include "sensor/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::sensor {

std::vector<Sample> Sensor::record(const Waveform& waveform,
                                   util::Rng& rng) const {
  std::vector<Sample> samples;
  record_into(waveform, rng, samples);
  return samples;
}

void Sensor::record_into(const Waveform& waveform, util::Rng& rng,
                         std::vector<Sample>& samples) const {
  obs::Span span("sensor-sampling");
  samples.clear();
  const double end = waveform.duration();
  if (end <= 0.0) return;

  // Upper bound on the sample count: one per active-mode period, plus the
  // endpoints. Reserving here (and reusing the buffer across repetitions)
  // removes the growth reallocations from the hot path.
  samples.reserve(static_cast<std::size_t>(end / opt_.active_period_s) + 2);

  Waveform::Cursor cursor = waveform.cursor();
  double reading = cursor.power_at(0.0);
  double next_sample = rng.uniform() * opt_.idle_period_s;  // phase offset
  const double dt = opt_.integration_dt_s;

  std::uint64_t steps = 0;
  for (double t = 0.0; t <= end; t += dt) {
    // First-order lag toward the instantaneous true power. The cursor is
    // bit-identical to power_at for this monotone sweep.
    const double p = cursor.power_at(t);
    reading += (p - reading) * std::min(dt / opt_.lag_tau_s, 1.0);
    ++steps;

    if (t + 1e-12 >= next_sample) {
      double reported = reading + rng.normal(0.0, opt_.noise_sigma_w);
      reported = std::max(reported, 0.0);
      reported = std::round(reported / opt_.quantum_w) * opt_.quantum_w;
      samples.push_back({t, reported});
      const double period =
          reading >= opt_.gate_w ? opt_.active_period_s : opt_.idle_period_s;
      next_sample = t + period;
    }
  }
  span.arg("samples", static_cast<std::uint64_t>(samples.size()));
  if (obs::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("sensor.record.calls").add();
    registry.counter("sensor.samples").add(samples.size());
    registry.counter("sensor.steps").add(steps);
  }
}

}  // namespace repro::sensor
