#include "sensor/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace repro::sensor {

std::vector<Sample> Sensor::record(const Waveform& waveform,
                                   util::Rng& rng) const {
  std::vector<Sample> samples;
  record_into(waveform, rng, samples);
  return samples;
}

void Sensor::record_into(const Waveform& waveform, util::Rng& rng,
                         std::vector<Sample>& samples) const {
  obs::Span span("sensor-sampling");
  samples.clear();
  const double end = waveform.duration();
  if (end <= 0.0) return;

  // Upper bound on the sample count: one per active-mode period, plus the
  // endpoints. Reserving here (and reusing the buffer across repetitions)
  // removes the growth reallocations from the hot path.
  samples.reserve(static_cast<std::size_t>(end / opt_.active_period_s) + 2);

  // Fault-injection site (DESIGN.md §12): one decision per recording,
  // drawn against the experiment key the study scoped around this
  // computation. The fault targets the emitted-sample index
  // `magnitude % 128`: a dropped or duplicated reading, or the sensor
  // getting stuck in 1 Hz mode from that sample on (the "part-time power
  // measurement" failure of real nvidia-smi polling). The RNG stream is
  // consumed identically either way, so a fault perturbs only the sample
  // list, never the noise sequence of later repetitions.
  fault::Fault fault;
  const fault::FaultPlan* plan = fault::active();
  const std::string_view fault_key = fault::context_key();
  if (plan != nullptr && !fault_key.empty()) {
    fault = plan->draw(fault::Site::kSensor, fault_key);
  }
  const std::size_t fault_index = fault.magnitude % 128;
  bool stuck_idle = false;

  Waveform::Cursor cursor = waveform.cursor();
  double reading = cursor.power_at(0.0);
  double next_sample = rng.uniform() * opt_.idle_period_s;  // phase offset
  const double dt = opt_.integration_dt_s;

  std::uint64_t steps = 0;
  std::size_t emitted = 0;
  for (double t = 0.0; t <= end; t += dt) {
    // First-order lag toward the instantaneous true power. The cursor is
    // bit-identical to power_at for this monotone sweep.
    const double p = cursor.power_at(t);
    reading += (p - reading) * std::min(dt / opt_.lag_tau_s, 1.0);
    ++steps;

    if (t + 1e-12 >= next_sample) {
      double reported = reading + rng.normal(0.0, opt_.noise_sigma_w);
      reported = std::max(reported, 0.0);
      reported = std::round(reported / opt_.quantum_w) * opt_.quantum_w;
      if (fault && emitted == fault_index) {
        switch (fault.kind) {
          case fault::Kind::kSampleDrop:
            plan->record_applied(fault::Site::kSensor, fault_key);
            break;  // the reading is lost
          case fault::Kind::kSampleDuplicate:
            plan->record_applied(fault::Site::kSensor, fault_key);
            samples.push_back({t, reported});
            samples.push_back({t, reported});
            break;
          case fault::Kind::kStuckIdleRate:
            plan->record_applied(fault::Site::kSensor, fault_key);
            stuck_idle = true;
            samples.push_back({t, reported});
            break;
          default:
            samples.push_back({t, reported});
            break;
        }
      } else {
        samples.push_back({t, reported});
      }
      ++emitted;
      const double period =
          (!stuck_idle && reading >= opt_.gate_w) ? opt_.active_period_s
                                                  : opt_.idle_period_s;
      next_sample = t + period;
    }
  }
  span.arg("samples", static_cast<std::uint64_t>(samples.size()));
  if (obs::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("sensor.record.calls").add();
    registry.counter("sensor.samples").add(samples.size());
    registry.counter("sensor.steps").add(steps);
  }
}

}  // namespace repro::sensor
