#include "sensor/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace repro::sensor {

std::vector<Sample> Sensor::record(const Waveform& waveform, util::Rng& rng) const {
  obs::Span span("sensor-sampling");
  std::vector<Sample> samples;
  const double end = waveform.duration();
  if (end <= 0.0) return samples;

  double reading = waveform.power_at(0.0);
  double next_sample = rng.uniform() * opt_.idle_period_s;  // phase offset
  const double dt = opt_.integration_dt_s;

  for (double t = 0.0; t <= end; t += dt) {
    // First-order lag toward the instantaneous true power.
    const double p = waveform.power_at(t);
    reading += (p - reading) * std::min(dt / opt_.lag_tau_s, 1.0);

    if (t + 1e-12 >= next_sample) {
      double reported = reading + rng.normal(0.0, opt_.noise_sigma_w);
      reported = std::max(reported, 0.0);
      reported = std::round(reported / opt_.quantum_w) * opt_.quantum_w;
      samples.push_back({t, reported});
      const double period =
          reading >= opt_.gate_w ? opt_.active_period_s : opt_.idle_period_s;
      next_sample = t + period;
    }
  }
  span.arg("samples", static_cast<std::uint64_t>(samples.size()));
  return samples;
}

}  // namespace repro::sensor
