// Shared helpers for the benchmark-suite implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "workloads/context.hpp"
#include "workloads/kernel.hpp"
#include "workloads/workload.hpp"

namespace repro::suites {

// Suite names exactly as the paper spells them.
inline constexpr std::string_view kLonestar = "LonestarGPU";
inline constexpr std::string_view kParboil = "Parboil";
inline constexpr std::string_view kRodinia = "Rodinia";
inline constexpr std::string_view kShoc = "SHOC";
inline constexpr std::string_view kSdk = "CUDA SDK";

/// Properties of a graph input that graph kernels translate into
/// InstructionMix fields: per-warp coalescing of CSR neighbor-list reads,
/// divergence from the degree spread, block-level load imbalance.
struct GraphKernelShape {
  double avg_degree = 1.0;
  double load_transactions_per_access = 8.0;  // scattered gather
  double divergence = 1.0;
  double imbalance = 1.0;
  double l2_hit_rate = 0.2;
};

/// Derives the shape from an actual CSR graph: the coalescing factor comes
/// from running sampled per-warp neighbor gathers through the coalescing
/// analyzer, divergence from the degree CV, imbalance from max/avg degree.
GraphKernelShape graph_shape(const graph::CsrGraph& g, std::uint64_t seed);

/// A node-parallel graph kernel over `nodes` threads (scaled), each reading
/// its adjacency list (degree * loads) and writing `stores_per_node` words.
workloads::KernelLaunch graph_node_kernel(std::string name, double nodes,
                                          const GraphKernelShape& shape,
                                          double loads_per_edge,
                                          double stores_per_node,
                                          double int_per_edge = 4.0);

/// Linear scale factor from a reduced-scale host structure to the paper's
/// input size.
inline double scale_factor(double paper_items, double sim_items) {
  return sim_items > 0.0 ? paper_items / sim_items : 1.0;
}

/// Runs a byte-address stream through a K20-L2-sized cache model
/// (1.25 MB, 128 B lines, 16-way LRU) and returns the hit rate. Workloads
/// with non-trivial reuse derive their l2_hit_rate from a sampled stream
/// of their actual access pattern instead of asserting a number.
double l2_hit_rate_from_stream(std::span<const std::uint64_t> addresses);

/// Convenience base class holding the static descriptive fields.
class SuiteWorkload : public workloads::Workload {
 public:
  SuiteWorkload(std::string name, std::string_view suite, int kernels,
                workloads::Boundedness boundedness,
                workloads::Regularity regularity)
      : name_(std::move(name)),
        suite_(suite),
        kernels_(kernels),
        boundedness_(boundedness),
        regularity_(regularity) {}

  std::string_view name() const override { return name_; }
  std::string_view suite() const override { return suite_; }
  int num_global_kernels() const override { return kernels_; }
  workloads::Boundedness boundedness() const override { return boundedness_; }
  workloads::Regularity regularity() const override { return regularity_; }

 private:
  std::string name_;
  std::string_view suite_;
  int kernels_;
  workloads::Boundedness boundedness_;
  workloads::Regularity regularity_;
};

}  // namespace repro::suites
