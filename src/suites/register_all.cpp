#include <mutex>

#include "suites/factories.hpp"
#include "workloads/registry.hpp"

namespace repro::suites {

namespace {

void register_all_workloads_impl() {
  Registry& r = workloads::Registry::instance();

  // CUDA SDK (paper Table 1 order within suites; suites grouped).
  register_estimate_pi(r);
  register_nbody(r);
  register_scan(r);

  // LonestarGPU
  register_barnes_hut(r);
  register_lbfs(r);
  register_dmr(r);
  register_mst(r);
  register_pta(r);
  register_sssp(r);
  register_nsp(r);

  // Parboil
  register_pbfs(r);
  register_cutcp(r);
  register_histo(r);
  register_lbm(r);
  register_mriq(r);
  register_sad(r);
  register_sgemm(r);
  register_stencil(r);
  register_tpacf(r);

  // Rodinia
  register_backprop(r);
  register_rbfs(r);
  register_gaussian(r);
  register_mummer(r);
  register_nn(r);
  register_nw(r);
  register_pathfinder(r);

  // SHOC
  register_sbfs(r);
  register_fft(r);
  register_maxflops(r);
  register_md(r);
  register_qtc(r);
  register_sort(r);
  register_stencil2d(r);
}

}  // namespace

void register_all_workloads() {
  // call_once instead of a plain bool: bench drivers hand the registry to
  // scheduler worker threads, and tests may race registration.
  static std::once_flag once;
  std::call_once(once, register_all_workloads_impl);
}

}  // namespace repro::suites
