// SHOC Fast Fourier Transform (paper §IV.A.4.b).
//
// Batched 512-point radix-8 FFTs, single- and double-precision forward and
// inverse passes. Each butterfly stage re-streams the signal: bandwidth-
// heavy with a solid FP core in between - a balanced code.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Fft : public SuiteWorkload {
 public:
  Fft()
      : SuiteWorkload("FFT", kShoc, 2, workloads::Boundedness::kBalanced,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input", "256 MB batched 512-pt FFTs, sp+dp, x1100 passes"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kElements = 32.0 * 1024.0 * 1024.0;  // complex points
    constexpr int kPasses = 1100;

    LaunchTrace trace;
    trace.reserve(kPasses * 2);
    for (int p = 0; p < kPasses; ++p) {
      KernelLaunch sp;
      sp.name = "fft_radix8_sp";
      sp.threads_per_block = 64;
      sp.blocks = kElements / 8.0 / 64.0;
      sp.mix.global_loads = 16.0;   // 8 complex in
      sp.mix.global_stores = 16.0;  // 8 complex out
      sp.mix.fp32 = 135.0;          // radix-8 butterflies + twiddles
      sp.mix.sfu = 6.0;
      sp.mix.int_alu = 24.0;
      sp.mix.shared_accesses = 24.0;  // transpose exchanges
      sp.mix.shared_conflict_factor = 1.5;
      sp.mix.syncs = 3.0;
      sp.mix.load_transactions_per_access = 1.2;
      sp.mix.l2_hit_rate = 0.15;
      sp.mix.mlp = 8.0;
      trace.push_back(std::move(sp));

      KernelLaunch dp = trace.back();
      dp.name = "fft_radix8_dp";
      dp.blocks /= 2.0;  // half the batch in double precision
      dp.mix.fp32 = 0.0;
      dp.mix.fp64 = 135.0;
      dp.mix.bytes_per_access = 8.0;
      dp.mix.load_transactions_per_access = 2.2;
      dp.mix.store_transactions_per_access = 2.2;
      trace.push_back(std::move(dp));
    }
    return trace;
  }
};

}  // namespace

void register_fft(Registry& r) { r.add(std::make_unique<Fft>()); }

}  // namespace repro::suites
