// SHOC Stencil2D (paper §IV.A.4.g).
//
// 9-point single-precision 2-D stencil with shared-memory tiling: each
// cell is read once from DRAM per sweep and reused 9x from the tile, so
// the flop:byte ratio is much higher than the Parboil 3-D stencil's -
// enough core activity to keep the clocks busy (one reason S2D remains
// measurable at the 324 MHz configuration while STEN does not).
#include <cstdint>
#include <memory>
#include <vector>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Stencil2d : public SuiteWorkload {
 public:
  Stencil2d()
      : SuiteWorkload("S2D", kShoc, 1, workloads::Boundedness::kBalanced,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input", "4096^2 grid, 12500 iterations"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kPoints = 4096.0 * 4096.0;
    constexpr int kIterations = 12500;
    const double l2_hit = sampled_l2_hit_rate();

    LaunchTrace trace;
    trace.reserve(kIterations);
    for (int it = 0; it < kIterations; ++it) {
      KernelLaunch k;
      k.name = "s2d_stencil9";
      k.threads_per_block = 256;
      k.blocks = kPoints / 256.0;
      k.mix.global_loads = 1.3;  // own cell + halo share
      k.mix.global_stores = 1.0;
      k.mix.fp32 = 18.0;         // 9 weighted adds (FMA)
      k.mix.int_alu = 10.0;
      k.mix.shared_accesses = 10.0;
      k.mix.syncs = 1.0;
      k.mix.l2_hit_rate = l2_hit;
      k.mix.mlp = 8.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }

  /// 9-point sweep over a sampled row band of the 4096-wide grid, run
  /// through the L2 cache model: the row reuse (three 16 KB rows resident)
  /// is what the hit rate actually comes from.
  static double sampled_l2_hit_rate() {
    static const double rate = [] {
      constexpr std::uint64_t kWidth = 4096;
      constexpr std::uint64_t kRows = 64;
      std::vector<std::uint64_t> stream;
      stream.reserve(kWidth * kRows * 9);
      for (std::uint64_t y = 1; y + 1 < kRows; ++y) {
        for (std::uint64_t x = 1; x + 1 < kWidth; ++x) {
          for (std::uint64_t dy = 0; dy < 3; ++dy) {
            for (std::uint64_t dx = 0; dx < 3; ++dx) {
              stream.push_back(((y + dy - 1) * kWidth + (x + dx - 1)) * 4);
            }
          }
        }
      }
      return l2_hit_rate_from_stream(stream);
    }();
    return rate;
  }
};

}  // namespace

void register_stencil2d(Registry& r) { r.add(std::make_unique<Stencil2d>()); }

}  // namespace repro::suites
