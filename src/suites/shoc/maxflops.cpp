// SHOC MaxFlops (paper §IV.A.4.c).
//
// Peak-throughput microbenchmark: 20 kernel variants (sp/dp x add/mul/
// madd/mul-madd mixes) of pure register arithmetic, each launched several
// times with host-side bookkeeping in between. Draws the highest power of
// the whole study (paper: SDK/compute codes peak >160 W; MF saves the most
// energy at 614 because its runtime barely grows, §V.A.1).
#include <memory>
#include <string>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class MaxFlops : public SuiteWorkload {
 public:
  MaxFlops()
      : SuiteWorkload("MF", kShoc, 20, workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input", "20 kernel variants x 2 repetitions"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr int kVariants = 20;
    constexpr int kReps = 2;
    constexpr double kThreads = 2496.0 * 256.0;  // saturate all SMs
    constexpr double kIters = 1200000.0;         // unrolled arithmetic loop

    LaunchTrace trace;
    trace.reserve(kVariants * kReps);
    for (int v = 0; v < kVariants; ++v) {
      const bool dp = v >= 10;
      const bool madd = (v % 2) == 1;  // FMA variants: 2 flops/op
      for (int rep = 0; rep < kReps; ++rep) {
        KernelLaunch k;
        k.name = std::string(dp ? "mf_dp_" : "mf_sp_") + (madd ? "madd" : "add");
        k.threads_per_block = 256;
        k.blocks = kThreads / 256.0;
        k.host_gap_before_s = 0.01;  // host-side verification between reps
        const double flops = kIters * (madd ? 2.0 : 1.0) * (dp ? 0.5 : 1.0);
        if (dp) {
          k.mix.fp64 = flops;
        } else {
          k.mix.fp32 = flops;
        }
        k.mix.fma_fraction = madd ? 1.0 : 0.0;
        k.mix.int_alu = 8.0;
        k.mix.global_loads = 2.0;
        k.mix.global_stores = 1.0;
        k.mix.mlp = 4.0;
        trace.push_back(std::move(k));
      }
    }
    return trace;
  }
};

}  // namespace

void register_maxflops(Registry& r) { r.add(std::make_unique<MaxFlops>()); }

}  // namespace repro::suites
