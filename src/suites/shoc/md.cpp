// SHOC Molecular Dynamics (paper §IV.A.4.d).
//
// Lennard-Jones force computation over neighbour lists: each atom-thread
// loads its ~128 neighbours' positions (gathered, texture-cached) and
// evaluates the 6-12 potential. Compute-leaning with a scattered gather.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Md : public SuiteWorkload {
 public:
  Md()
      : SuiteWorkload("MD", kShoc, 1, workloads::Boundedness::kBalanced,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input", "73k atoms, 128 neighbours, x7000 passes"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kAtoms = 73728.0;
    constexpr double kNeighbors = 128.0;
    constexpr int kPasses = 7000;

    LaunchTrace trace;
    trace.reserve(kPasses);
    for (int p = 0; p < kPasses; ++p) {
      KernelLaunch k;
      k.name = "md_lj_force";
      k.threads_per_block = 256;
      k.regs_per_thread = 38;
      k.blocks = kAtoms / 256.0;
      k.mix.global_loads = 1.0 + kNeighbors * 3.2;  // index + xyz gather
      k.mix.global_stores = 3.0;
      k.mix.fp32 = 22.0 * kNeighbors;  // r2, r^-6, r^-12, force accumulate
      k.mix.sfu = 1.0 * kNeighbors;
      k.mix.int_alu = 3.0 * kNeighbors;
      k.mix.load_transactions_per_access = 3.2;  // spatially sorted atoms
      k.mix.fma_fraction = 0.5;
      k.mix.divergence = 1.2;  // cutoff predication
      k.mix.l2_hit_rate = 0.72;
      k.mix.mlp = 6.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_md(Registry& r) { r.add(std::make_unique<Md>()); }

}  // namespace repro::suites
