// SHOC Sort (paper §IV.A.4.f).
//
// Radix sort of 32-bit key/value pairs: per 4-bit digit, a histogram
// kernel, a scan of the block counters, and a scattering reorder pass.
// The scatter writes are only segment-coalesced, making the reorder pass
// the bandwidth hog.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Sort : public SuiteWorkload {
 public:
  Sort()
      : SuiteWorkload("ST", kShoc, 5, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input", "96M key/value pairs, 8 digit passes x38 reps"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kPairs = 96.0 * 1024.0 * 1024.0;
    constexpr int kDigits = 8;  // 32 bits, 4 bits per pass
    constexpr int kReps = 38;

    LaunchTrace trace;
    trace.reserve(static_cast<std::size_t>(kReps) * kDigits * 3);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int d = 0; d < kDigits; ++d) {
        KernelLaunch hist;
        hist.name = "sort_histogram";
        hist.threads_per_block = 256;
        hist.blocks = kPairs / 8.0 / 256.0;
        hist.mix.global_loads = 8.0;
        hist.mix.int_alu = 24.0;
        hist.mix.shared_accesses = 8.0;
        hist.mix.shared_conflict_factor = 1.8;
        hist.mix.l2_hit_rate = 0.05;
        hist.mix.mlp = 10.0;
        trace.push_back(std::move(hist));

        KernelLaunch scan;
        scan.name = "sort_scan_counters";
        scan.threads_per_block = 256;
        scan.blocks = 256.0;
        scan.mix.global_loads = 16.0;
        scan.mix.global_stores = 16.0;
        scan.mix.int_alu = 40.0;
        scan.mix.shared_accesses = 20.0;
        scan.mix.syncs = 8.0;
        scan.mix.l2_hit_rate = 0.8;
        scan.mix.mlp = 6.0;
        trace.push_back(std::move(scan));

        KernelLaunch reorder;
        reorder.name = "sort_reorder";
        reorder.threads_per_block = 256;
        reorder.blocks = kPairs / 4.0 / 256.0;
        reorder.mix.global_loads = 8.0;   // keys + values
        reorder.mix.global_stores = 8.0;  // scattered by digit bucket
        reorder.mix.int_alu = 20.0;
        reorder.mix.store_transactions_per_access = 4.0;  // 16 buckets/warp
        reorder.mix.l2_hit_rate = 0.1;
        reorder.mix.mlp = 9.0;
        trace.push_back(std::move(reorder));
      }
    }
    return trace;
  }
};

}  // namespace

void register_sort(Registry& r) { r.add(std::make_unique<Sort>()); }

}  // namespace repro::suites
