// SHOC Quality Threshold Clustering (paper §IV.A.4.e).
//
// Repeatedly grows a candidate cluster around every remaining point
// (scanning the pairwise distance matrix) and commits the largest one.
// The per-iteration work shrinks as points are clustered - a genuinely
// iterative, mildly irregular compute/memory mix. We run the real greedy
// QTC loop on sampled points to get the iteration structure.
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "util/rng.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

/// Greedy QTC on sampled 2-D points; returns remaining-point counts per
/// committed cluster.
std::vector<int> qtc_rounds(int n, double threshold, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<double> x(n), y(n);
  for (int i = 0; i < n; ++i) {
    x[i] = rng.uniform(0.0, 100.0);
    y[i] = rng.uniform(0.0, 100.0);
  }
  std::vector<char> used(n, 0);
  std::vector<int> remaining_per_round;
  int remaining = n;
  while (remaining > 0) {
    remaining_per_round.push_back(remaining);
    // Largest cluster: for each seed point, count points within threshold.
    int best_seed = -1, best_count = -1;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      int count = 0;
      for (int j = 0; j < n; ++j) {
        if (used[j]) continue;
        const double d = std::hypot(x[i] - x[j], y[i] - y[j]);
        if (d <= threshold) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best_seed = i;
      }
    }
    for (int j = 0; j < n; ++j) {
      if (used[j]) continue;
      if (std::hypot(x[best_seed] - x[j], y[best_seed] - y[j]) <= threshold) {
        used[j] = 1;
        --remaining;
      }
    }
  }
  return remaining_per_round;
}

class Qtc : public SuiteWorkload {
 public:
  Qtc()
      : SuiteWorkload("QTC", kShoc, 6, workloads::Boundedness::kBalanced,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input", "26k points; 600-point host model for rounds"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext& ctx) const override {
    constexpr double kPoints = 26000.0;
    constexpr int kSample = 600;
    const std::vector<int> rounds =
        qtc_rounds(kSample, /*threshold=*/6.0, ctx.structural_seed + 0x91c);
    const double scale = kPoints / kSample;

    constexpr int kRepeats = 1300;  // benchmark timing passes
    LaunchTrace trace;
    for (int rep = 0; rep < kRepeats; ++rep) {
    for (const int remaining_sample : rounds) {
      const double remaining = remaining_sample * scale;
      KernelLaunch grow;
      grow.name = "qtc_find_clusters";
      grow.threads_per_block = 64;
      grow.blocks = remaining / 64.0;
      grow.mix.global_loads = remaining / 64.0;  // distance-matrix row tiles
      grow.mix.fp32 = remaining / 12.0;
      grow.mix.int_alu = remaining / 16.0;
      grow.mix.shared_accesses = remaining / 48.0;
      grow.mix.load_transactions_per_access = 1.6;
      grow.mix.divergence = 1.6;
      grow.mix.l2_hit_rate = 0.45;
      grow.mix.mlp = 6.0;
      grow.imbalance = 1.3;
      trace.push_back(std::move(grow));

      KernelLaunch reduce;
      reduce.name = "qtc_reduce_commit";
      reduce.threads_per_block = 256;
      reduce.blocks = std::max(remaining, 256.0) / 256.0;
      reduce.mix.global_loads = 3.0;
      reduce.mix.global_stores = 1.0;
      reduce.mix.int_alu = 10.0;
      reduce.mix.atomics = 0.2;
      reduce.mix.l2_hit_rate = 0.5;
      reduce.mix.mlp = 6.0;
      trace.push_back(std::move(reduce));
    }
    }
    return trace;
  }
};

}  // namespace

void register_qtc(Registry& r) { r.add(std::make_unique<Qtc>()); }

}  // namespace repro::suites
