// SHOC Breadth-First Search (paper §IV.A.4.a).
//
// SHOC measures BFS on a small undirected random k-way graph and repeats
// the traversal many times (with device-side result resets and verify
// passes between runs). The combination of a tiny graph, whole-array
// bookkeeping kernels per iteration and hundreds of repetitions makes it
// by far the least efficient BFS per processed vertex (Table 4: ~2600x
// worse than L-BFS). Runs the real BFS for the level structure.
#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

constexpr graph::NodeId kVertices = 10000;  // SHOC default-ish problem size
constexpr double kDegree = 2.8;
constexpr int kPasses = 4000;  // benchmark repetitions + verify traversals

class SBfs : public SuiteWorkload {
 public:
  SBfs()
      : SuiteWorkload("S-BFS", kShoc, 9, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default benchmark input (random k-way graph)",
             "10k vertices, 4000 measured passes"}};
  }

  ItemCounts items(std::size_t) const override {
    // SHOC reports per distinct traversal, not per pass.
    return {static_cast<double>(kVertices), static_cast<double>(kVertices) * kDegree};
  }

  LaunchTrace trace(std::size_t, const ExecContext& ctx) const override {
    const graph::CsrGraph g =
        graph::random_kway(kVertices, kDegree, ctx.structural_seed + 0x5b);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const graph::BfsProfile profile = graph::bfs(g, graph::best_source(g));

    LaunchTrace trace;
    for (int pass = 0; pass < kPasses; ++pass) {
      // Reset kernel over the whole cost array.
      KernelLaunch reset;
      reset.name = "sbfs_reset";
      reset.threads_per_block = 256;
      reset.blocks = static_cast<double>(kVertices) / 256.0;
      reset.mix.global_stores = 1.0;
      reset.mix.int_alu = 2.0;
      reset.mix.mlp = 8.0;
      if (pass > 0) reset.host_gap_before_s = 0.004;  // host-side verify
      trace.push_back(std::move(reset));

      for (std::uint32_t level = 0; level < profile.depth; ++level) {
        // Vertex-parallel: every level launches one thread per vertex and
        // lets inactive ones exit - most of the scan is wasted work.
        KernelLaunch k;
        k.name = "sbfs_frontier";
        k.threads_per_block = 256;
        k.regs_per_thread = 40;
        k.blocks = static_cast<double>(kVertices) / 256.0;
        k.mix.global_loads = 3.0 + shape.avg_degree * 8.0;  // frontier re-expansion
        k.mix.global_stores = 2.0;
        k.mix.int_alu = 12.0 + 6.0 * shape.avg_degree;
        k.mix.atomics = 1.0;
        k.mix.atomic_contention = 2.0;
        k.mix.load_transactions_per_access = shape.load_transactions_per_access;
        k.mix.divergence = shape.divergence;
        k.mix.l2_hit_rate = 0.6;  // tiny graph caches, but latency dominates
        k.mix.mlp = 0.4;          // dependent gathers, tiny machine fill
        trace.push_back(std::move(k));
      }
    }
    return trace;
  }
};

}  // namespace

void register_sbfs(Registry& r) { r.add(std::make_unique<SBfs>()); }

}  // namespace repro::suites
