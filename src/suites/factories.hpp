// Per-program registration hooks, called by register_all_workloads().
// One function per source file under src/suites/<suite>/.
#pragma once

#include "workloads/registry.hpp"

namespace repro::suites {

using workloads::Registry;

// LonestarGPU
void register_barnes_hut(Registry& r);
void register_lbfs(Registry& r);     // L-BFS + atomic/wla/wlw/wlc variants
void register_dmr(Registry& r);
void register_mst(Registry& r);
void register_pta(Registry& r);
void register_sssp(Registry& r);     // SSSP + wln/wlc variants
void register_nsp(Registry& r);

// Parboil
void register_pbfs(Registry& r);
void register_cutcp(Registry& r);
void register_histo(Registry& r);
void register_lbm(Registry& r);
void register_mriq(Registry& r);
void register_sad(Registry& r);
void register_sgemm(Registry& r);
void register_stencil(Registry& r);
void register_tpacf(Registry& r);

// Rodinia
void register_backprop(Registry& r);
void register_rbfs(Registry& r);
void register_gaussian(Registry& r);
void register_mummer(Registry& r);
void register_nn(Registry& r);
void register_nw(Registry& r);
void register_pathfinder(Registry& r);

// SHOC
void register_sbfs(Registry& r);
void register_fft(Registry& r);
void register_maxflops(Registry& r);
void register_md(Registry& r);
void register_qtc(Registry& r);
void register_sort(Registry& r);
void register_stencil2d(Registry& r);

// CUDA SDK
void register_estimate_pi(Registry& r);  // EIP and EP
void register_nbody(Registry& r);
void register_scan(Registry& r);

}  // namespace repro::suites
