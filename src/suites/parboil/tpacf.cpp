// Parboil Two-Point Angular Correlation Function (paper §IV.A.2.i).
//
// Correlates observed vs. random astronomical body catalogs: all-pairs
// angular distances binned into a histogram. Compute-bound (dot products
// plus acos per pair, shared-memory histograms), executed as a sequence of
// per-catalog kernel launches with host-side catalog loads in between -
// those gaps matter for how the power sensor sees the run.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Tpacf : public SuiteWorkload {
 public:
  Tpacf()
      : SuiteWorkload("TPACF", kParboil, 1, workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"small benchmark input", "as in the paper (97k points, 240 random catalogs)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kPoints = 97178.0;
    constexpr int kCatalogs = 240;

    LaunchTrace trace;
    trace.reserve(kCatalogs);
    for (int cat = 0; cat < kCatalogs; ++cat) {
      KernelLaunch k;
      k.name = "tpacf_gen_hists";
      k.threads_per_block = 256;
      k.blocks = kPoints / 4.0 / 256.0;
      k.host_gap_before_s = 0.03;  // host loads the next random catalog
      const double pairs = kPoints * 4.0;  // 4 points per thread vs. all points
      k.mix.fp32 = 8.0 * pairs;      // 3-D dot product + binning compare
      k.mix.sfu = 0.0;               // bin search avoids acos via precomputed
      k.mix.int_alu = 6.0 * pairs;   // binary search over bin boundaries
      k.mix.shared_accesses = 1.2 * pairs;
      k.mix.shared_conflict_factor = 1.6;
      k.mix.global_loads = 0.05 * pairs;
      k.mix.load_transactions_per_access = 1.2;
      k.mix.l2_hit_rate = 0.7;
      k.mix.divergence = 1.5;  // bin-search branches
      k.mix.mlp = 5.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_tpacf(Registry& r) { r.add(std::make_unique<Tpacf>()); }

}  // namespace repro::suites
