// Parboil Breadth-First Search (paper §IV.A.2.a).
//
// Queue-based data-driven BFS on the San Francisco Bay Area road map
// (321k nodes, 800k edges). Runs the real worklist BFS on a reduced-scale
// lattice and emits one (hierarchical-queue) kernel per level. Parboil's
// implementation is latency-bound: small frontiers on a high-diameter
// graph leave the GPU underoccupied, which is why its absolute power stays
// below ~50 W (paper §V.C) and why it is 15x less vertex-efficient than
// L-BFS (Table 4).
#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

constexpr double kPaperNodes = 321e3;
constexpr double kPaperEdges = 800e3;
constexpr std::uint32_t kSimGrid = 100;  // 10k-node lattice stand-in
// Parboil re-runs the traversal many times and uses multi-kernel queue
// management; the per-level work multiplier folds both in.
constexpr double kLevelWork = 23000.0;

class PBfs : public SuiteWorkload {
 public:
  PBfs()
      : SuiteWorkload("P-BFS", kParboil, 3, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"SF Bay Area road map (321k nodes, 800k edges)",
             "100x100 lattice stand-in"}};
  }

  ItemCounts items(std::size_t) const override { return {kPaperNodes, kPaperEdges}; }

  LaunchTrace trace(std::size_t, const ExecContext& ctx) const override {
    const graph::CsrGraph g =
        graph::roadmap(kSimGrid, kSimGrid, ctx.structural_seed + 0x9b);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const graph::BfsProfile profile = graph::bfs(g, graph::best_source(g));
    const double scale =
        (kPaperNodes / static_cast<double>(g.num_nodes())) * kLevelWork;

    LaunchTrace trace;
    trace.reserve(profile.depth);
    for (std::uint32_t level = 0; level < profile.depth; ++level) {
      const double frontier =
          std::max(static_cast<double>(profile.frontier_nodes[level]) * scale, 64.0);
      KernelLaunch k;
      k.name = "pbfs_kernel";
      k.threads_per_block = 512;
      k.regs_per_thread = 48;  // occupancy-limited (queue bookkeeping)
      k.blocks = frontier / 512.0;
      k.mix.global_loads = 2.0 + shape.avg_degree * 1.2;
      k.mix.global_stores = 1.5;
      k.mix.int_alu = 10.0 + 5.0 * shape.avg_degree;
      k.mix.load_transactions_per_access = shape.load_transactions_per_access;
      k.mix.divergence = shape.divergence;
      k.mix.atomics = 0.8;  // queue tail
      k.mix.atomic_contention = 2.0;
      k.mix.shared_accesses = 4.0;  // hierarchical local queues
      k.mix.l2_hit_rate = shape.l2_hit_rate;
      k.mix.mlp = 0.5;  // small frontiers: little memory parallelism
      k.imbalance = shape.imbalance;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_pbfs(Registry& r) { r.add(std::make_unique<PBfs>()); }

}  // namespace repro::suites
