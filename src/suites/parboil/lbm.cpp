// Parboil Lattice-Boltzmann Method (paper §IV.A.2.d).
//
// D3Q19 lid-driven cavity: one fused stream-and-collide kernel per
// timestep, double precision, ~150 flops and ~300 bytes of DRAM traffic
// per cell per step. LBM is the paper's canonical bandwidth-bound code:
// it shows the single largest runtime (7.75x) and energy (2x) increase of
// the whole study when the memory clock drops 8x (614 -> 324, §V.A.2).
#include <algorithm>
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct LbmInput {
  const char* name;
  double cells;   // lattice sites
  int timesteps;
};

// Paper inputs: "3000 and 100 timestep inputs" (the 100-step input uses
// the larger grid of the Parboil 'long' dataset).
constexpr LbmInput kInputs[] = {
    {"3000 timesteps (120x120x150)", 120.0 * 120.0 * 150.0, 3000},
    {"100 timesteps (320x320x160)", 320.0 * 320.0 * 160.0, 100},
};

class Lbm : public SuiteWorkload {
 public:
  Lbm()
      : SuiteWorkload("LBM", kParboil, 1, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "as in the paper"},
            {kInputs[1].name, "as in the paper"}};
  }

  LaunchTrace trace(std::size_t input, const ExecContext&) const override {
    const LbmInput& in = kInputs[input];
    LaunchTrace trace;
    trace.reserve(static_cast<std::size_t>(in.timesteps));
    for (int step = 0; step < in.timesteps; ++step) {
      KernelLaunch k;
      k.name = "lbm_stream_collide";
      k.threads_per_block = 128;
      k.regs_per_thread = 60;  // holds 19 distributions
      k.blocks = in.cells / 128.0;
      // 19 dists in + 19 out, 8-byte doubles.
      k.mix.global_loads = 20.0;
      k.mix.global_stores = 19.0;
      k.mix.bytes_per_access = 8.0;
      k.mix.fp64 = 300.0;
      k.mix.sfu = 10.0;
      k.mix.int_alu = 30.0;
      // 8-byte accesses need 2 transactions/warp even fully coalesced;
      // the propagation step's neighbour offsets add a little scatter.
      k.mix.load_transactions_per_access = 2.4;
      k.mix.store_transactions_per_access = 2.2;
      k.mix.l2_hit_rate = 0.12;  // streaming: little reuse
      k.mix.divergence = 1.05;
      k.mix.mlp = 10.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_lbm(Registry& r) { r.add(std::make_unique<Lbm>()); }

}  // namespace repro::suites
