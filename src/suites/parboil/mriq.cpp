// Parboil Magnetic Resonance Imaging - Q (paper §IV.A.2.e).
//
// Computes the Q matrix for non-Cartesian MRI reconstruction: for every
// voxel, a sum of cos/sin-weighted contributions over all k-space samples.
// Archetypal compute-bound code - dominated by special-function (sin/cos)
// and FMA throughput with the sample coordinates streamed through
// constant/shared memory.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Mriq : public SuiteWorkload {
 public:
  Mriq()
      : SuiteWorkload("MRIQ", kParboil, 2, workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"64x64x64 matrix", "as in the paper (262k voxels, 147k samples)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kVoxels = 64.0 * 64.0 * 64.0;
    constexpr double kSamples = 147456.0;
    constexpr int kRepeats = 270;  // benchmark timing loop

    LaunchTrace trace;
    for (int rep = 0; rep < kRepeats; ++rep) {
      // Kernel 1: PhiMag over the k-space samples (tiny).
      KernelLaunch phimag;
      phimag.name = "mriq_phimag";
      phimag.threads_per_block = 512;
      phimag.blocks = kSamples / 512.0;
      phimag.mix.global_loads = 2.0;
      phimag.mix.global_stores = 1.0;
      phimag.mix.fp32 = 3.0;
      phimag.mix.mlp = 8.0;
      trace.push_back(std::move(phimag));

      // Kernel 2: Q - the heavy one. Each voxel-thread loops over the
      // samples in tiles.
      KernelLaunch q;
      q.name = "mriq_computeQ";
      q.threads_per_block = 256;
      q.regs_per_thread = 26;
      q.blocks = kVoxels / 256.0;
      q.mix.fp32 = 10.0 * kSamples / 8.0;  // FMAs per sample tile per thread
      q.mix.sfu = 2.0 * kSamples / 8.0;    // sin + cos
      q.mix.int_alu = 1.0 * kSamples / 8.0;
      q.mix.shared_accesses = 0.4 * kSamples / 8.0;
      q.mix.global_loads = kSamples / 512.0;  // tile refills
      q.mix.global_stores = 2.0;
      q.mix.load_transactions_per_access = 1.1;
      q.mix.l2_hit_rate = 0.7;
      q.mix.syncs = kSamples / 1024.0;
      q.mix.fma_fraction = 0.6;
      q.mix.mlp = 6.0;
      trace.push_back(std::move(q));
    }
    return trace;
  }
};

}  // namespace

void register_mriq(Registry& r) { r.add(std::make_unique<Mriq>()); }

}  // namespace repro::suites
