// Parboil Sum of Absolute Differences (paper §IV.A.2.f).
//
// MPEG motion-estimation kernel: 16x16 SADs between a frame and a
// reference, then hierarchical reduction to larger block sizes. Integer-
// dominated with streaming reads that the texture path caches well;
// moderately memory-bound.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Sad : public SuiteWorkload {
 public:
  Sad()
      : SuiteWorkload("SAD", kParboil, 3, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"default input", "as in the paper (CIF frame, 33x33 search)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kMacroblocks = (704.0 / 16.0) * (576.0 / 16.0);
    constexpr double kSearchPositions = 33.0 * 33.0;
    constexpr int kFrames = 26000;  // benchmark loops over frames

    LaunchTrace trace;
    trace.reserve(kFrames * 3);
    for (int f = 0; f < kFrames; ++f) {
      KernelLaunch sad4;
      sad4.name = "sad_mb_calc";
      sad4.threads_per_block = 128;
      sad4.blocks = kMacroblocks * kSearchPositions / 8.0 / 128.0;
      sad4.mix.global_loads = 34.0;  // ref window + current block (cached)
      sad4.mix.global_stores = 2.0;
      sad4.mix.int_alu = 96.0;       // |a-b| accumulate over 4x4 quads
      sad4.mix.load_transactions_per_access = 2.0;
      sad4.mix.l2_hit_rate = 0.75;   // heavy window overlap
      sad4.mix.mlp = 8.0;
      trace.push_back(std::move(sad4));

      KernelLaunch sad8;
      sad8.name = "sad_calc_8";
      sad8.threads_per_block = 128;
      sad8.blocks = kMacroblocks * kSearchPositions / 16.0 / 128.0;
      sad8.mix.global_loads = 8.0;
      sad8.mix.global_stores = 4.0;
      sad8.mix.int_alu = 24.0;
      sad8.mix.l2_hit_rate = 0.6;
      sad8.mix.mlp = 8.0;
      trace.push_back(std::move(sad8));

      KernelLaunch sad16;
      sad16.name = "sad_calc_16";
      sad16.threads_per_block = 128;
      sad16.blocks = kMacroblocks * kSearchPositions / 32.0 / 128.0;
      sad16.mix.global_loads = 4.0;
      sad16.mix.global_stores = 2.0;
      sad16.mix.int_alu = 12.0;
      sad16.mix.l2_hit_rate = 0.6;
      sad16.mix.mlp = 8.0;
      trace.push_back(std::move(sad16));
    }
    return trace;
  }
};

}  // namespace

void register_sad(Registry& r) { r.add(std::make_unique<Sad>()); }

}  // namespace repro::suites
