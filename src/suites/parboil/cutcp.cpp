// Parboil Distance-Cutoff Coulombic Potential (paper §IV.A.2.b).
//
// Short-range Coulombic potential on a 3-D lattice around the watbox
// biomolecule. Compute-bound: each grid point accumulates contributions
// from the charges binned within the cutoff radius - dominated by fused
// multiply-adds and one rsqrt per interaction, with the atom bins staged
// through shared memory.
#include <algorithm>
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Cutcp : public SuiteWorkload {
 public:
  Cutcp()
      : SuiteWorkload("CUTCP", kParboil, 1, workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"watbox.sl100.pqr", "as in the paper (~144k atoms)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    // Lattice ~ 208^3 points; ~520 atoms fall within each point's cutoff
    // sphere after binning. The kernel processes 8 points per thread.
    constexpr double kLatticePoints = 208.0 * 208.0 * 208.0;
    constexpr double kInteractionsPerPoint = 520.0;
    constexpr double kPointsPerThread = 8.0;

    constexpr int kRepeats = 380;  // benchmark timing loop
    KernelLaunch k;
    k.name = "cutcp_lattice";
    k.threads_per_block = 128;
    k.regs_per_thread = 40;
    k.blocks = kLatticePoints / kPointsPerThread / 128.0;
    const double inter = kInteractionsPerPoint * kPointsPerThread;
    k.mix.fp32 = 9.0 * inter;          // dx,dy,dz, r2, weighted add (FMA-rich)
    k.mix.sfu = 1.0 * inter;           // rsqrt
    k.mix.int_alu = 2.0 * inter;
    k.mix.shared_accesses = 0.35 * inter;  // staged atom bins
    k.mix.global_loads = 0.08 * inter;     // bin refills
    k.mix.global_stores = kPointsPerThread;
    k.mix.load_transactions_per_access = 1.3;
    k.mix.l2_hit_rate = 0.6;
    k.mix.divergence = 1.1;  // cutoff test predication
    k.mix.syncs = 16.0;
    k.mix.fma_fraction = 0.7;
    k.mix.mlp = 6.0;
    LaunchTrace trace(kRepeats, k);
    return trace;
  }
};

}  // namespace

void register_cutcp(Registry& r) { r.add(std::make_unique<Cutcp>()); }

}  // namespace repro::suites
