// Parboil Dense Matrix Multiply (paper §IV.A.2.g).
//
// Register-tiled SGEMM (column-major A/C, transposed B). Compute-bound:
// the inner product is pure FMA throughput with operand tiles staged
// through shared memory; DRAM traffic is O(n^2) against O(n^3) flops.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Sgemm : public SuiteWorkload {
 public:
  Sgemm()
      : SuiteWorkload("SGEMM", kParboil, 1, workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"small benchmark input", "as in the paper (1k x 1k matrices)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kN = 1024.0;
    constexpr double kTile = 16.0;     // 16x16 output tile per thread quad
    constexpr int kRepeats = 5500;     // benchmark timing loop

    LaunchTrace trace;
    trace.reserve(kRepeats);
    for (int rep = 0; rep < kRepeats; ++rep) {
      KernelLaunch k;
      k.name = "sgemm_tiled";
      k.threads_per_block = 128;
      k.regs_per_thread = 48;  // register tile
      k.blocks = (kN / kTile) * (kN / (kTile * 4.0));
      // Each thread computes a 1x16 sliver: 2*N flops per output element.
      k.mix.fp32 = 2.0 * kN * 16.0;
      k.mix.int_alu = 0.5 * kN;
      k.mix.shared_accesses = kN / 2.0;
      k.mix.global_loads = kN / 8.0;   // tile loads, fully coalesced
      k.mix.global_stores = 16.0;
      k.mix.load_transactions_per_access = 1.0;
      k.mix.l2_hit_rate = 0.55;
      k.mix.fma_fraction = 0.85;
      k.mix.syncs = kN / kTile;
      k.mix.mlp = 6.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_sgemm(Registry& r) { r.add(std::make_unique<Sgemm>()); }

}  // namespace repro::suites
