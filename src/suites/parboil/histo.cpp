// Parboil Saturating Histogram (paper §IV.A.2.c).
//
// 2-D histogram with a 255 saturation cap over a large input image. Four
// kernels per pass: prescan, intermediate per-block histograms in shared
// memory (bank-conflicted, atomic), merge, and saturate. Memory-bound with
// contended atomics; the skewed bin distribution of the "20-4" input makes
// the atomic contention genuinely input-dependent.
#include <algorithm>
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Histo : public SuiteWorkload {
 public:
  Histo()
      : SuiteWorkload("HISTO", kParboil, 4, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"image file, parameters 20-4", "as in the paper (996x1040 bins)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kPixels = 4096.0 * 4096.0;
    constexpr int kPasses = 9000;  // benchmark iterates the 4-kernel pipeline

    LaunchTrace trace;
    trace.reserve(kPasses * 4);
    for (int pass = 0; pass < kPasses; ++pass) {
      KernelLaunch prescan;
      prescan.name = "histo_prescan";
      prescan.threads_per_block = 512;
      prescan.blocks = kPixels / 16.0 / 512.0;
      prescan.mix.global_loads = 16.0;
      prescan.mix.int_alu = 24.0;
      prescan.mix.l2_hit_rate = 0.05;
      prescan.mix.mlp = 10.0;
      trace.push_back(std::move(prescan));

      KernelLaunch main;
      main.name = "histo_main";
      main.threads_per_block = 512;
      main.blocks = kPixels / 8.0 / 512.0;
      main.mix.global_loads = 8.0;
      main.mix.int_alu = 20.0;
      main.mix.shared_accesses = 8.0;
      main.mix.shared_conflict_factor = 3.0;  // bin hot spots
      main.mix.atomics = 1.0;
      main.mix.atomic_contention = 4.0;
      main.mix.l2_hit_rate = 0.3;
      main.mix.divergence = 1.3;  // saturation test
      main.mix.mlp = 6.0;
      trace.push_back(std::move(main));

      KernelLaunch intermediates;
      intermediates.name = "histo_intermediates";
      intermediates.threads_per_block = 512;
      intermediates.blocks = 1024.0;
      intermediates.mix.global_loads = 24.0;
      intermediates.mix.global_stores = 2.0;
      intermediates.mix.int_alu = 30.0;
      intermediates.mix.l2_hit_rate = 0.5;
      intermediates.mix.mlp = 8.0;
      trace.push_back(std::move(intermediates));

      KernelLaunch final_k;
      final_k.name = "histo_final";
      final_k.threads_per_block = 512;
      final_k.blocks = 996.0 * 1040.0 / 512.0;
      final_k.mix.global_loads = 3.0;
      final_k.mix.global_stores = 1.0;
      final_k.mix.int_alu = 8.0;
      final_k.mix.divergence = 1.2;
      final_k.mix.l2_hit_rate = 0.4;
      final_k.mix.mlp = 8.0;
      trace.push_back(std::move(final_k));
    }
    return trace;
  }
};

}  // namespace

void register_histo(Registry& r) { r.add(std::make_unique<Histo>()); }

}  // namespace repro::suites
