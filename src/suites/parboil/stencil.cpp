// Parboil 3-D Stencil (paper §IV.A.2.h).
//
// Iterative 7-point Jacobi on a regular 3-D grid. Memory-bound: ~2 words
// of DRAM traffic per point per sweep once the vertical reuse is captured,
// but the naive Parboil version is partially latency-limited (each thread
// walks a z-column with dependent loads), keeping its power draw low -
// one of the paper's "waiting for memory" Parboil codes (§V.C).
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Stencil : public SuiteWorkload {
 public:
  Stencil()
      : SuiteWorkload("STEN", kParboil, 1, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"small benchmark input", "as in the paper (512x512x64, 8500 iters)"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kPoints = 512.0 * 512.0 * 64.0;
    constexpr int kIterations = 8500;

    LaunchTrace trace;
    trace.reserve(kIterations);
    for (int it = 0; it < kIterations; ++it) {
      KernelLaunch k;
      k.name = "stencil_jacobi7";
      k.threads_per_block = 256;
      k.regs_per_thread = 56;  // occupancy-limited
      k.blocks = kPoints / 64.0 / 256.0;  // 64-deep z-walk per thread
      k.mix.global_loads = 64.0 * 1.8;  // x/y neighbours miss L1, z reused
      k.mix.global_stores = 64.0;
      k.mix.fp32 = 64.0 * 8.0;
      k.mix.int_alu = 64.0 * 6.0;
      k.mix.load_transactions_per_access = 1.2;
      k.mix.l2_hit_rate = 0.55;  // plane reuse
      k.mix.mlp = 2.5;           // dependent column walk: low MLP
      k.mix.divergence = 1.05;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_stencil(Registry& r) { r.add(std::make_unique<Stencil>()); }

}  // namespace repro::suites
