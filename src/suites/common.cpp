#include "suites/common.hpp"

#include <algorithm>
#include <cmath>

#include "sim/cache.hpp"
#include "sim/coalesce.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"

namespace repro::suites {

GraphKernelShape graph_shape(const graph::CsrGraph& g, std::uint64_t seed) {
  GraphKernelShape shape;
  shape.avg_degree = std::max(g.average_degree(), 0.01);

  // Coalescing: emulate a one-node-per-thread gather. Warp lane i handles
  // node base+i and streams that node's neighbor values; feed the actual
  // byte addresses of sampled warps through the coalescing analyzer.
  sim::CoalescingAnalyzer analyzer;
  util::Rng rng{seed};
  const std::uint32_t n = g.num_nodes();
  if (n >= 32) {
    const int sample_warps = static_cast<int>(std::min<std::uint64_t>(64, n / 32));
    for (int s = 0; s < sample_warps; ++s) {
      const auto base = static_cast<graph::NodeId>(rng.uniform_index(n - 31));
      // Each "round" r: every lane reads the value of its r-th neighbor;
      // lanes whose degree <= r sit out (divergence).
      graph::EdgeId max_deg = 0;
      for (graph::NodeId lane = 0; lane < 32; ++lane) {
        max_deg = std::max(max_deg, g.degree(base + lane));
      }
      for (graph::EdgeId r = 0; r < max_deg; ++r) {
        std::vector<std::uint64_t> addrs;
        addrs.reserve(32);
        for (graph::NodeId lane = 0; lane < 32; ++lane) {
          const graph::NodeId node = base + lane;
          if (g.degree(node) <= r) continue;
          const graph::NodeId neighbor = g.neighbors(node)[r];
          addrs.push_back(static_cast<std::uint64_t>(neighbor) * 4);
        }
        if (!addrs.empty()) analyzer.warp_access(addrs);
      }
    }
    shape.load_transactions_per_access =
        std::max(1.0, analyzer.stats().transactions_per_access());
  }

  // Divergence: warps serialize over the degree spread within the warp;
  // approximate the replay factor by 1 + degree CV (bounded).
  shape.divergence = std::clamp(1.0 + g.degree_cv(), 1.0, 8.0);

  // Block-level imbalance: blocks owning high-degree nodes finish last.
  const double max_over_avg =
      static_cast<double>(g.max_degree()) / shape.avg_degree;
  // A 256-thread block averages over 256 nodes, damping the skew.
  shape.imbalance = std::clamp(1.0 + (max_over_avg - 1.0) / 48.0, 1.0, 3.0);

  // Locality: road-like graphs (low degree, local structure) cache better
  // than skewed graphs; approximate via degree CV.
  shape.l2_hit_rate = std::clamp(0.58 - 0.12 * g.degree_cv(), 0.20, 0.58);
  return shape;
}

double l2_hit_rate_from_stream(std::span<const std::uint64_t> addresses) {
  const sim::KeplerDevice& dev = sim::k20c();
  sim::SetAssocCache cache{dev.l2_bytes, dev.l2_line_bytes, dev.l2_ways};
  for (const std::uint64_t addr : addresses) cache.access(addr);
  return cache.hit_rate();
}

workloads::KernelLaunch graph_node_kernel(std::string name, double nodes,
                                          const GraphKernelShape& shape,
                                          double loads_per_edge,
                                          double stores_per_node,
                                          double int_per_edge) {
  workloads::KernelLaunch k;
  k.name = std::move(name);
  k.threads_per_block = 256;
  k.blocks = std::max(nodes / k.threads_per_block, 1.0);
  k.regs_per_thread = 28;
  k.imbalance = shape.imbalance;

  workloads::InstructionMix& mix = k.mix;
  mix.global_loads = 2.0 + shape.avg_degree * loads_per_edge;  // own state + edges
  mix.global_stores = stores_per_node;
  mix.int_alu = 6.0 + shape.avg_degree * int_per_edge;
  mix.load_transactions_per_access = shape.load_transactions_per_access;
  mix.store_transactions_per_access =
      std::min(shape.load_transactions_per_access, 8.0);
  mix.l2_hit_rate = shape.l2_hit_rate;
  mix.divergence = shape.divergence;
  mix.atomics = 1.2;            // scattered read-modify-write updates
  mix.atomic_contention = 2.0;
  mix.active_lane_fraction = 0.85;
  mix.mlp = 0.45;
  return k;
}

}  // namespace repro::suites
