// CUDA SDK N-body (paper §IV.A.5.c).
//
// All-pairs gravitational simulation: each body-thread streams every other
// body through shared-memory tiles and accumulates the interaction - the
// paper's flagship regular, compute-bound, shared-memory-cached code. It
// shows the largest DVFS power saving (-22% at 614, §V.A.1) and is the
// documented ECC anomaly (§V.A.3): under ECC its energy *drops* slightly,
// shrinking with larger inputs; we reproduce that via
// ecc_power_adjustment, flagged in DESIGN.md §7.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct NbInput {
  const char* name;
  double bodies;
  int iterations;
  double ecc_adjust;  // paper §V.A.3: smaller effect for larger inputs
};

constexpr NbInput kInputs[] = {
    {"100k bodies", 100e3, 60, 0.93},
    {"250k bodies", 250e3, 8, 0.95},
    {"1m bodies", 1e6, 1, 0.97},
};

class NBody : public SuiteWorkload {
 public:
  NBody()
      : SuiteWorkload("NB", kSdk, 1, workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "as in the paper"},
            {kInputs[1].name, "as in the paper"},
            {kInputs[2].name, "as in the paper"}};
  }

  double ecc_power_adjustment() const override { return 0.95; }

  LaunchTrace trace(std::size_t input, const ExecContext&) const override {
    const NbInput& in = kInputs[input];
    LaunchTrace trace;
    trace.reserve(static_cast<std::size_t>(in.iterations));
    for (int it = 0; it < in.iterations; ++it) {
      KernelLaunch k;
      k.name = "nbody_integrate";
      k.threads_per_block = 256;
      k.regs_per_thread = 30;
      k.blocks = in.bodies / 256.0;
      // Classic 20-flop body-body interaction + rsqrt, tiled via shared
      // memory. Larger inputs do more tiles per thread, raising the
      // computation-to-launch-overhead ratio (and the power draw, Fig. 5).
      k.mix.fp32 = 20.0 * in.bodies;
      k.mix.sfu = 1.0 * in.bodies;
      k.mix.int_alu = 1.5 * in.bodies;
      k.mix.shared_accesses = in.bodies / 4.0;
      k.mix.global_loads = in.bodies / 256.0;  // one tile load per block pass
      k.mix.global_stores = 8.0;
      k.mix.load_transactions_per_access = 1.0;
      k.mix.l2_hit_rate = 0.5;
      k.mix.syncs = 2.0 * in.bodies / 256.0;
      // Tile-edge and wave-tail underutilization on smaller inputs.
      constexpr double kUtilization[3] = {0.76, 0.88, 1.0};
      k.mix.active_lane_fraction = kUtilization[input];
      k.mix.mlp = 6.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_nbody(Registry& r) { r.add(std::make_unique<NBody>()); }

}  // namespace repro::suites
