// CUDA SDK Scan (paper §IV.A.5.d).
//
// Work-efficient parallel prefix sum over 2^26 elements: per pass, a
// block-local scan kernel (shared-memory heavy, bank-conflict-aware), a
// scan of the block sums, and a uniform add. The benchmark loops the
// 3-kernel pipeline many times. Bandwidth-fed but with a dense shared-
// memory/integer core - like the other SDK codes it keeps the SMs busy
// enough to draw ~100 W.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Scan : public SuiteWorkload {
 public:
  Scan()
      : SuiteWorkload("SC", kSdk, 3, workloads::Boundedness::kBalanced,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"2^26 elements", "as in the paper, x1000 pipeline repetitions"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kElements = 67108864.0;  // 2^26
    constexpr int kRepeats = 1000;

    LaunchTrace trace;
    trace.reserve(kRepeats * 3);
    for (int rep = 0; rep < kRepeats; ++rep) {
      KernelLaunch local;
      local.name = "scan_exclusive_shared";
      local.threads_per_block = 256;
      local.blocks = kElements / 4.0 / 256.0;  // 4 elements per thread
      local.mix.global_loads = 4.0;
      local.mix.global_stores = 4.0;
      local.mix.int_alu = 34.0;        // up-sweep + down-sweep
      local.mix.shared_accesses = 22.0;
      local.mix.shared_conflict_factor = 1.3;
      local.mix.syncs = 10.0;
      local.mix.l2_hit_rate = 0.05;
      local.mix.mlp = 9.0;
      trace.push_back(std::move(local));

      KernelLaunch block_sums;
      block_sums.name = "scan_block_sums";
      block_sums.threads_per_block = 256;
      block_sums.blocks = kElements / 4.0 / 256.0 / 256.0;
      block_sums.mix.global_loads = 4.0;
      block_sums.mix.global_stores = 4.0;
      block_sums.mix.int_alu = 34.0;
      block_sums.mix.shared_accesses = 22.0;
      block_sums.mix.syncs = 10.0;
      block_sums.mix.l2_hit_rate = 0.7;
      block_sums.mix.mlp = 8.0;
      trace.push_back(std::move(block_sums));

      KernelLaunch uniform;
      uniform.name = "scan_uniform_update";
      uniform.threads_per_block = 256;
      uniform.blocks = kElements / 4.0 / 256.0;
      uniform.mix.global_loads = 4.5;
      uniform.mix.global_stores = 4.0;
      uniform.mix.int_alu = 10.0;
      uniform.mix.l2_hit_rate = 0.05;
      uniform.mix.mlp = 10.0;
      trace.push_back(std::move(uniform));
    }
    return trace;
  }
};

}  // namespace

void register_scan(Registry& r) { r.add(std::make_unique<Scan>()); }

}  // namespace repro::suites
