// CUDA SDK MC_EstimatePiInlineP (EIP) and MC_EstimatePiP (EP)
// (paper §IV.A.5.a-b).
//
// Monte-Carlo estimation of Pi with a pseudo-random number generator.
// EIP generates random numbers inline inside the estimation kernel; EP
// generates batches of random numbers in a separate kernel first. Both are
// compute-bound and run many short launches (one per Monte-Carlo batch)
// with host-side reductions in between - the bursty waveform is why the
// slow sensor cannot capture them at the 324 MHz configuration.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class EstimatePi : public SuiteWorkload {
 public:
  explicit EstimatePi(bool inline_variant)
      : SuiteWorkload(inline_variant ? "EIP" : "EP", kSdk, 2,
                      workloads::Boundedness::kCompute,
                      workloads::Regularity::kRegular),
        inline_(inline_variant) {}

  std::vector<InputSpec> inputs() const override {
    return {{"None", "SDK default: 150 Monte-Carlo batches"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr int kBatches = 150;
    constexpr double kThreads = 2496.0 * 96.0;
    constexpr double kSamplesPerThread = 60000.0;

    LaunchTrace trace;
    trace.reserve(kBatches * 2);
    for (int b = 0; b < kBatches; ++b) {
      if (!inline_) {
        // EP: separate batched PRNG kernel writing random numbers out.
        KernelLaunch prng;
        prng.name = "ep_generate_batch";
        prng.threads_per_block = 192;
        prng.blocks = kThreads / 192.0;
        prng.host_gap_before_s = b == 0 ? 0.0 : 0.012;
        prng.mix.int_alu = 10.0 * kSamplesPerThread / 4.0;
        prng.mix.fp32 = 2.0 * kSamplesPerThread / 4.0;
        prng.mix.global_stores = kSamplesPerThread / 4.0 / 16.0;
        prng.mix.mlp = 6.0;
        trace.push_back(std::move(prng));
      }

      KernelLaunch estimate;
      estimate.name = inline_ ? "eip_compute_value" : "ep_compute_value";
      estimate.threads_per_block = 192;
      estimate.blocks = kThreads / 192.0;
      estimate.host_gap_before_s = (inline_ && b > 0) ? 0.012 : 0.0;
      // Inside-circle test per sample: 2 random numbers, mul, add, cmp.
      estimate.mix.fp32 = 5.0 * kSamplesPerThread;
      estimate.mix.int_alu = (inline_ ? 10.0 : 2.0) * kSamplesPerThread;
      estimate.mix.global_loads =
          inline_ ? 2.0 : kSamplesPerThread / 16.0;  // EP reads the batch
      estimate.mix.shared_accesses = 8.0;  // block reduction
      estimate.mix.syncs = 6.0;
      estimate.mix.l2_hit_rate = inline_ ? 0.3 : 0.2;
      estimate.mix.mlp = 7.0;
      trace.push_back(std::move(estimate));
    }
    return trace;
  }

 private:
  bool inline_;
};

}  // namespace

void register_estimate_pi(Registry& r) {
  r.add(std::make_unique<EstimatePi>(/*inline_variant=*/true));
  r.add(std::make_unique<EstimatePi>(/*inline_variant=*/false));
}

}  // namespace repro::suites
