// Rodinia Needleman-Wunsch (paper §IV.A.3.f).
//
// Global DNA sequence alignment via dynamic programming: the score matrix
// is processed in anti-diagonal waves of 16x16 tiles, two kernels per wave
// (upper-left and lower-right sweeps). Early/late waves have few tiles, so
// average occupancy is poor; within a tile the DP recurrence serializes on
// shared memory. Memory-bound with ECC-visible traffic (the score matrix
// is written once and read back).
#include <algorithm>
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct NwInput {
  const char* name;
  double n;
};

constexpr NwInput kInputs[] = {
    {"4096 items", 4096.0},
    {"16384 items", 16384.0},
};

class Nw : public SuiteWorkload {
 public:
  Nw()
      : SuiteWorkload("NW", kRodinia, 2, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "x800 repetitions"}, {kInputs[1].name, "x200 repetitions"}};
  }

  LaunchTrace trace(std::size_t input, const ExecContext&) const override {
    const double n = kInputs[input].n;
    const double tiles_per_side = n / 16.0;
    const int kRepeats = input == 0 ? 1000 : 220;

    LaunchTrace trace;
    for (int rep = 0; rep < kRepeats; ++rep) {
      // Anti-diagonal waves; bundle waves into groups of 16 to keep the
      // trace compact while preserving the triangular grid-size profile.
      for (double wave = 1.0; wave <= tiles_per_side; wave += 16.0) {
        const double tiles = std::min(wave + 8.0, tiles_per_side);  // avg in bundle
        for (int half = 0; half < 2; ++half) {
          KernelLaunch k;
          k.name = half == 0 ? "nw_kernel1" : "nw_kernel2";
          k.threads_per_block = 16;  // one tile row per thread: tiny blocks
          k.blocks = tiles * 16.0;
          k.mix.global_loads = 3.0 * 16.0;  // tile edges + reference row
          k.mix.global_stores = 16.0;
          k.mix.int_alu = 10.0 * 16.0;      // max() recurrences
          k.mix.shared_accesses = 3.0 * 16.0;
          k.mix.shared_conflict_factor = 1.4;
          k.mix.syncs = 32.0;
          k.mix.load_transactions_per_access = 2.0;
          k.mix.l2_hit_rate = 0.3;
          k.mix.mlp = 0.8;  // wavefront dependency chain
          k.mix.divergence = 1.3;
          trace.push_back(std::move(k));
        }
      }
    }
    return trace;
  }
};

}  // namespace

void register_nw(Registry& r) { r.add(std::make_unique<Nw>()); }

}  // namespace repro::suites
