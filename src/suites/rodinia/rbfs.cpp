// Rodinia Breadth-First Search (paper §IV.A.3.b).
//
// Rodinia's BFS scans ALL nodes every level (a frontier-flag array marks
// active ones) using two kernels per level. On the low-diameter random
// graphs it uses, most of each scan is wasted work - that is why R-BFS
// costs ~26x more time per vertex than L-BFS (Table 4) despite the much
// friendlier graph. Runs the real BFS to get the level structure.
#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct RbfsInput {
  const char* name;
  double paper_nodes;
  graph::NodeId sim_nodes;
};

constexpr RbfsInput kInputs[] = {
    {"random graph, 100k nodes", 100e3, 20000},
    {"random graph, 1m nodes", 1e6, 50000},
};
constexpr double kAvgDegree = 10.0;
constexpr double kRepeatPasses[2] = {13000.0, 4200.0};  // benchmark repetitions

class RBfs : public SuiteWorkload {
 public:
  RBfs()
      : SuiteWorkload("R-BFS", kRodinia, 2, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "20k-node stand-in, x5 scale"},
            {kInputs[1].name, "50k-node stand-in, x20 scale"}};
  }

  ItemCounts items(std::size_t input) const override {
    return {kInputs[input].paper_nodes, kInputs[input].paper_nodes * kAvgDegree};
  }

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const RbfsInput& in = kInputs[input];
    const graph::CsrGraph g = graph::random_kway(in.sim_nodes, kAvgDegree,
                                                 ctx.structural_seed + input);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const graph::BfsProfile profile = graph::bfs(g, graph::best_source(g));
    const double all_nodes =
        in.paper_nodes * kRepeatPasses[input];  // every level scans every node

    LaunchTrace trace;
    trace.reserve(profile.depth * 2);
    for (std::uint32_t level = 0; level < profile.depth; ++level) {
      const double active_frac =
          static_cast<double>(profile.frontier_nodes[level]) / g.num_nodes();

      KernelLaunch visit;
      visit.name = "rbfs_kernel1";
      visit.threads_per_block = 512;
      visit.blocks = all_nodes / 512.0;
      visit.mix.global_loads = 1.0 + shape.avg_degree * active_frac * 2.0;
      visit.mix.global_stores = 0.2 + active_frac * 2.0;
      visit.mix.int_alu = 4.0 + shape.avg_degree * active_frac * 4.0;
      visit.mix.load_transactions_per_access =
          1.0 + (shape.load_transactions_per_access - 1.0) * std::min(1.0, active_frac * 3.0);
      visit.mix.divergence = 1.0 + active_frac * 4.0;
      visit.mix.l2_hit_rate = 0.2;
      visit.mix.mlp = 7.0;
      visit.imbalance = shape.imbalance;
      trace.push_back(std::move(visit));

      KernelLaunch update;
      update.name = "rbfs_kernel2";
      update.threads_per_block = 512;
      update.blocks = all_nodes / 512.0;
      update.mix.global_loads = 2.0;  // flags
      update.mix.global_stores = 0.5;
      update.mix.int_alu = 5.0;
      update.mix.divergence = 1.2;
      update.mix.l2_hit_rate = 0.15;
      update.mix.mlp = 9.0;
      trace.push_back(std::move(update));
    }
    return trace;
  }
};

}  // namespace

void register_rbfs(Registry& r) { r.add(std::make_unique<RBfs>()); }

}  // namespace repro::suites
