// Rodinia MUMmerGPU (paper §IV.A.3.d).
//
// Aligns query sequences against a reference suffix tree. Each thread
// walks its query down the tree: dependent, scattered pointer loads with
// query-length-dependent divergence - the archetype of a memory-LATENCY-
// bound irregular code. The 100bp queries walk ~4x deeper than the 25bp
// ones, which changes both runtime and power (paper Fig. 5: MUM power
// changes >20% across inputs).
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct MumInput {
  const char* name;
  double query_len;
  double queries;
};

constexpr MumInput kInputs[] = {
    {"100bp queries", 100.0, 1.6e6},
    {"25bp queries", 25.0, 2.2e6},
};

class Mummer : public SuiteWorkload {
 public:
  Mummer()
      : SuiteWorkload("MUM", kRodinia, 3, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "as in the paper"}, {kInputs[1].name, "as in the paper"}};
  }

  LaunchTrace trace(std::size_t input, const ExecContext&) const override {
    const MumInput& in = kInputs[input];
    const double depth = in.query_len * 0.9;  // suffix-tree walk length
    constexpr int kPasses = 48;  // benchmark streams query batches

    LaunchTrace trace;
    for (int pass = 0; pass < kPasses; ++pass) {
    KernelLaunch match;
    match.name = "mum_mummergpu_kernel";
    match.threads_per_block = 256;
    match.regs_per_thread = 44;
    match.blocks = in.queries / 256.0;
    match.mix.global_loads = 3.0 * depth;  // node, children, edge label
    match.mix.global_stores = 2.0;
    match.mix.int_alu = 8.0 * depth;
    match.mix.load_transactions_per_access = 18.0;  // tree nodes scatter
    match.mix.divergence = 3.5;  // queries diverge at different tree depths
    match.mix.l2_hit_rate = 0.55;  // top tree levels cache
    match.mix.mlp = 0.4;           // dependent pointer chase
    match.imbalance = 1.35;
    trace.push_back(std::move(match));

    KernelLaunch print;
    print.name = "mum_printKernel";
    print.threads_per_block = 256;
    print.blocks = in.queries / 256.0;
    print.mix.global_loads = 1.5 * depth / 4.0;
    print.mix.global_stores = depth / 8.0;
    print.mix.int_alu = 3.0 * depth / 4.0;
    print.mix.load_transactions_per_access = 10.0;
    print.mix.divergence = 2.5;
    print.mix.l2_hit_rate = 0.4;
    print.mix.mlp = 2.5;
    trace.push_back(std::move(print));
    }

    return trace;
  }
};

}  // namespace

void register_mummer(Registry& r) { r.add(std::make_unique<Mummer>()); }

}  // namespace repro::suites
