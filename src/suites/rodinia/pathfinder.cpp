// Rodinia PathFinder (paper §IV.A.3.g).
//
// Dynamic programming over a 2-D grid: each of `height` steps computes a
// row of minimum accumulated weights from the previous row, processed in
// pyramid-shaped tiles held in shared memory so several DP steps happen
// per kernel. Streaming, memory-bound, regular.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct PfInput {
  const char* name;
  double cols;
  double rows;
  double pyramid;
};

constexpr PfInput kInputs[] = {
    {"100k cols, 100 rows, pyramid 20", 100e3, 100.0, 20.0},
    {"200k cols, 200 rows, pyramid 40", 200e3, 200.0, 40.0},
};

class Pathfinder : public SuiteWorkload {
 public:
  Pathfinder()
      : SuiteWorkload("PF", kRodinia, 1, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "x9000 repetitions"}, {kInputs[1].name, "x4500 repetitions"}};
  }

  LaunchTrace trace(std::size_t input, const ExecContext&) const override {
    const PfInput& in = kInputs[input];
    const int kRepeats = input == 0 ? 24000 : 9000;
    const auto steps = static_cast<int>(in.rows / in.pyramid);

    LaunchTrace trace;
    trace.reserve(static_cast<std::size_t>(kRepeats) * steps);
    for (int rep = 0; rep < kRepeats; ++rep) {
      for (int s = 0; s < steps; ++s) {
        KernelLaunch k;
        k.name = "pf_dynproc";
        k.threads_per_block = 256;
        k.blocks = in.cols / 256.0;
        k.mix.global_loads = 1.0 + in.pyramid;  // wall rows for the pyramid
        k.mix.global_stores = 1.0;
        k.mix.int_alu = 6.0 * in.pyramid;       // min() recurrences
        k.mix.shared_accesses = 3.0 * in.pyramid;
        k.mix.shared_conflict_factor = 1.2;
        k.mix.syncs = in.pyramid;
        k.mix.l2_hit_rate = 0.2;
        k.mix.divergence = 1.15;  // halo threads drop out
        k.mix.active_lane_fraction = 0.85;
        k.mix.mlp = 8.0;
        trace.push_back(std::move(k));
      }
    }
    return trace;
  }
};

}  // namespace

void register_pathfinder(Registry& r) { r.add(std::make_unique<Pathfinder>()); }

}  // namespace repro::suites
