// Rodinia Nearest Neighbor (paper §IV.A.3.e).
//
// Finds the k nearest hurricanes to a target coordinate: one kernel that
// streams all records and computes a euclidean distance each - trivially
// parallel, bandwidth-fed, very low arithmetic intensity. The benchmark
// loops over many queries to reach a measurable runtime.
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Nn : public SuiteWorkload {
 public:
  Nn()
      : SuiteWorkload("NN", kRodinia, 1, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"42k data points", "as in the paper, x5M query repetitions"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kRecords = 42764.0;
    constexpr int kQueries = 5000000;
    constexpr int kQueriesPerLaunch = 1000;

    LaunchTrace trace;
    trace.reserve(kQueries / kQueriesPerLaunch);
    for (int q = 0; q < kQueries; q += kQueriesPerLaunch) {
      KernelLaunch k;
      k.name = "nn_euclid";
      k.threads_per_block = 256;
      k.blocks = kRecords * kQueriesPerLaunch / 256.0;
      k.mix.global_loads = 2.0;  // lat, lng
      k.mix.global_stores = 1.0;
      k.mix.fp32 = 5.0;
      k.mix.sfu = 1.0;  // sqrt
      k.mix.int_alu = 3.0;
      k.mix.l2_hit_rate = 0.85;  // 42k records fit in L2 across queries
      k.mix.mlp = 8.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_nn(Registry& r) { r.add(std::make_unique<Nn>()); }

}  // namespace repro::suites
