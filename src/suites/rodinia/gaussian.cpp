// Rodinia Gaussian Elimination (paper §IV.A.3.c).
//
// Solves a 2048x2048 linear system row by row: per row, Fan1 computes the
// multiplier column and Fan2 updates the trailing submatrix. 2047 x 2
// kernel launches whose grids shrink as elimination proceeds; the many
// small launches keep occupancy and power low.
#include <algorithm>
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Gaussian : public SuiteWorkload {
 public:
  Gaussian()
      : SuiteWorkload("GE", kRodinia, 2, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"2048 x 2048 matrix", "as in the paper, x26 solve repetitions"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kN = 2048.0;
    constexpr int kRepeats = 26;

    LaunchTrace trace;
    trace.reserve(static_cast<std::size_t>(kRepeats) * 2 * 128);
    for (int rep = 0; rep < kRepeats; ++rep) {
      // Emit per-row launches in 16-row bundles to keep the trace compact;
      // the engine merges back-to-back same-kernel launches anyway.
      for (double row = 0.0; row + 16.0 <= kN; row += 16.0) {
        const double remaining = kN - row;

        KernelLaunch fan1;
        fan1.name = "ge_fan1";
        fan1.threads_per_block = 256;
        fan1.blocks = 16.0 * std::max(remaining, 256.0) / 256.0;
        fan1.mix.global_loads = 3.0;
        fan1.mix.global_stores = 1.0;
        fan1.mix.fp32 = 2.0;
        fan1.mix.int_alu = 6.0;
        fan1.mix.l2_hit_rate = 0.5;
        fan1.mix.mlp = 1.0;
        trace.push_back(std::move(fan1));

        KernelLaunch fan2;
        fan2.name = "ge_fan2";
        fan2.threads_per_block = 256;
        fan2.blocks = 16.0 * (remaining * remaining) / 256.0;
        fan2.mix.global_loads = 3.0;  // m, row, pivot row
        fan2.mix.global_stores = 1.0;
        fan2.mix.fp32 = 2.0;
        fan2.mix.int_alu = 8.0;
        fan2.mix.load_transactions_per_access = 1.2;
        fan2.mix.l2_hit_rate = 0.35;
        fan2.mix.mlp = 1.2;
        trace.push_back(std::move(fan2));
      }
    }
    return trace;
  }
};

}  // namespace

void register_gaussian(Registry& r) { r.add(std::make_unique<Gaussian>()); }

}  // namespace repro::suites
