// Rodinia Back Propagation (paper §IV.A.3.a).
//
// Trains one hidden layer over a 2^17-unit input layer: a forward pass
// (layerwise weighted sums, reduction in shared memory) and a weight-
// adjustment pass. Both kernels stream the big weight matrix from DRAM
// once per pass with almost no reuse - strongly memory-bound, which is why
// BP is among the Rodinia codes hit hard by ECC (paper §V.A.3).
#include <memory>

#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

class Backprop : public SuiteWorkload {
 public:
  Backprop()
      : SuiteWorkload("BP", kRodinia, 2, workloads::Boundedness::kMemory,
                      workloads::Regularity::kRegular) {}

  std::vector<InputSpec> inputs() const override {
    return {{"2^17 input elements", "as in the paper, x20k epochs to reach measurable runtime"}};
  }

  LaunchTrace trace(std::size_t, const ExecContext&) const override {
    constexpr double kInput = 131072.0;  // 2^17
    constexpr double kHidden = 16.0;
    constexpr int kEpochs = 20000;

    LaunchTrace trace;
    trace.reserve(kEpochs * 2);
    for (int e = 0; e < kEpochs; ++e) {
      KernelLaunch forward;
      forward.name = "bp_layerforward";
      forward.threads_per_block = 256;
      forward.blocks = kInput * kHidden / 256.0;
      forward.mix.global_loads = 2.0;  // weight + input unit
      forward.mix.global_stores = 0.1;
      forward.mix.fp32 = 4.0;
      forward.mix.int_alu = 4.0;
      forward.mix.shared_accesses = 2.5;  // reduction tree
      forward.mix.syncs = 1.0;
      forward.mix.load_transactions_per_access = 1.1;
      forward.mix.l2_hit_rate = 0.08;  // weight matrix streams through
      forward.mix.mlp = 9.0;
      trace.push_back(std::move(forward));

      KernelLaunch adjust;
      adjust.name = "bp_adjust_weights";
      adjust.threads_per_block = 256;
      adjust.blocks = kInput * kHidden / 256.0;
      adjust.mix.global_loads = 3.0;  // weight, delta, momentum
      adjust.mix.global_stores = 2.0;
      adjust.mix.fp32 = 6.0;
      adjust.mix.int_alu = 4.0;
      adjust.mix.load_transactions_per_access = 1.1;
      adjust.mix.l2_hit_rate = 0.08;
      adjust.mix.mlp = 9.0;
      trace.push_back(std::move(adjust));
    }
    return trace;
  }
};

}  // namespace

void register_backprop(Registry& r) { r.add(std::make_unique<Backprop>()); }

}  // namespace repro::suites
