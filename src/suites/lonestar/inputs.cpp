#include "suites/lonestar/inputs.hpp"

#include <map>
#include <mutex>
#include <utility>

#include "graph/generators.hpp"

namespace repro::suites::lonestar {

const graph::CsrGraph& road_map(RoadMap which, std::uint64_t structural_seed) {
  // Shared across workloads and scheduler worker threads; the mutex also
  // covers generation so a map is only ever built once. Node-based map
  // storage keeps returned references stable after the lock is released.
  static std::mutex mutex;
  static std::map<std::pair<int, std::uint64_t>, graph::CsrGraph> cache;
  std::lock_guard lock(mutex);
  const auto key = std::make_pair(static_cast<int>(which), structural_seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const RoadMapInput& spec = kRoadMaps[static_cast<int>(which)];
    it = cache
             .emplace(key, graph::roadmap(spec.sim_width, spec.sim_height,
                                          structural_seed + static_cast<int>(which)))
             .first;
  }
  return it->second;
}

double node_scale(RoadMap which, std::uint64_t structural_seed) {
  const RoadMapInput& spec = kRoadMaps[static_cast<int>(which)];
  const graph::CsrGraph& g = road_map(which, structural_seed);
  return spec.paper_nodes / static_cast<double>(g.num_nodes());
}

}  // namespace repro::suites::lonestar
