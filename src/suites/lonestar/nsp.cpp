// LonestarGPU Survey Propagation (paper §IV.A.1.g).
//
// Heuristic SAT solver via Bayesian message passing on the factor graph of
// a random k-SAT formula. We implement the real survey-propagation update
// loop on the host: clause->variable surveys iterate until the maximum
// message change drops below a tolerance, then the most-biased variable is
// decimated (fixed) and the loop repeats. Per-iteration message volumes
// drive the kernel sizes. The convergence path is genuinely data- and
// order-dependent, so the clock-dependent visibility shifts iteration
// counts like on real hardware.
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "util/rng.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct NspInput {
  const char* name;
  int clauses;
  int literals;  // variables
  int lits_per_clause;
  double paper_scale;  // emitted-work multiplier
};

constexpr NspInput kInputs[] = {
    {"16800 clauses, 4000 literals, 3 per clause", 2100, 500, 3, 42000.0},
    {"42k clauses, 10k literals, 3 per clause", 5250, 1250, 3, 22000.0},
    {"42k clauses, 10k literals, 5 per clause", 5250, 1250, 5, 15000.0},
};

struct Formula {
  int num_vars = 0;
  std::vector<std::vector<int>> clause_vars;  // signed literals, 1-based
};

Formula random_ksat(const NspInput& in, std::uint64_t seed) {
  util::Rng rng{seed};
  Formula f;
  f.num_vars = in.literals;
  f.clause_vars.resize(in.clauses);
  for (auto& clause : f.clause_vars) {
    clause.reserve(in.lits_per_clause);
    for (int k = 0; k < in.lits_per_clause; ++k) {
      const int var = 1 + static_cast<int>(rng.uniform_index(in.literals));
      clause.push_back(rng.bernoulli(0.5) ? var : -var);
    }
  }
  return f;
}

struct SpProfile {
  std::vector<int> iters_per_decimation;  // survey iterations per round
  int total_iterations = 0;
};

/// Survey propagation: eta[c][k] messages, damped updates, decimation of
/// the most biased variable each time the surveys converge.
SpProfile survey_propagation(const Formula& f, double damping,
                             std::uint64_t seed, int max_decimations) {
  util::Rng rng{seed};
  const int c = static_cast<int>(f.clause_vars.size());
  std::vector<std::vector<double>> eta(c);
  for (int i = 0; i < c; ++i) {
    eta[i].assign(f.clause_vars[i].size(), rng.uniform(0.05, 0.95));
  }
  std::vector<char> fixed(static_cast<std::size_t>(f.num_vars) + 1, 0);

  SpProfile prof;
  for (int round = 0; round < max_decimations; ++round) {
    int iters = 0;
    double max_delta = 1.0;
    while (max_delta > 1e-2 && iters < 200) {
      max_delta = 0.0;
      for (int i = 0; i < c; ++i) {
        for (std::size_t k = 0; k < f.clause_vars[i].size(); ++k) {
          const int lit = f.clause_vars[i][k];
          const int var = std::abs(lit);
          if (fixed[var]) continue;
          // Product over the clause's other literals of their "warning"
          // probabilities; a cheap but genuine SP-style coupling.
          double prod = 1.0;
          for (std::size_t j = 0; j < f.clause_vars[i].size(); ++j) {
            if (j == k) continue;
            prod *= 1.0 - eta[i][j] * 0.5;
          }
          const double next = damping * eta[i][k] + (1.0 - damping) * (1.0 - prod);
          max_delta = std::max(max_delta, std::abs(next - eta[i][k]));
          eta[i][k] = next;
        }
      }
      ++iters;
    }
    prof.iters_per_decimation.push_back(iters);
    prof.total_iterations += iters;
    // Decimate: fix one variable (round-robin over a hash for determinism).
    const int var =
        1 + static_cast<int>(util::mix64(seed + round) % f.num_vars);
    fixed[var] = 1;
  }
  return prof;
}

class Nsp : public SuiteWorkload {
 public:
  Nsp()
      : SuiteWorkload("NSP", kLonestar, 3, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    std::vector<InputSpec> specs;
    for (const NspInput& in : kInputs) {
      specs.push_back({in.name, "reduced-scale random k-SAT, x8 clause scale"});
    }
    return specs;
  }

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const NspInput& in = kInputs[input];
    const Formula f = random_ksat(in, ctx.structural_seed + input * 7);
    // Damping plays the role of intra-iteration visibility: with updates
    // visible sooner, surveys converge in fewer iterations.
    const double visibility = ctx.visibility(0.5, 0.6);
    const SpProfile profile = survey_propagation(
        f, /*damping=*/1.0 - 0.5 * visibility, ctx.structural_seed, 24);

    const double clause_threads = static_cast<double>(in.clauses) * in.paper_scale;
    const double var_threads = static_cast<double>(in.literals) * in.paper_scale;

    LaunchTrace trace;
    for (const int iters : profile.iters_per_decimation) {
      for (int i = 0; i < iters; ++i) {
        // Kernel 1: clause -> variable survey update (bipartite gather).
        KernelLaunch surveys;
        surveys.name = "nsp_update_surveys";
        surveys.threads_per_block = 192;
        surveys.blocks = std::max(clause_threads, 192.0) / 192.0;
        surveys.mix.global_loads = 3.0 * in.lits_per_clause;
        surveys.mix.global_stores = static_cast<double>(in.lits_per_clause);
        surveys.mix.fp32 = 9.0 * in.lits_per_clause;
        surveys.mix.int_alu = 5.0 * in.lits_per_clause;
        surveys.mix.load_transactions_per_access = 9.0;  // factor-graph scatter
        surveys.mix.divergence = 1.8;
        surveys.mix.l2_hit_rate = 0.3;
        surveys.mix.mlp = 5.0;
        trace.push_back(std::move(surveys));
      }
      // Kernel 2: variable bias computation. Kernel 3: decimation compact.
      KernelLaunch bias;
      bias.name = "nsp_update_bias";
      bias.threads_per_block = 192;
      bias.blocks = std::max(var_threads, 192.0) / 192.0;
      bias.mix.global_loads = 2.0 * in.lits_per_clause;
      bias.mix.global_stores = 1.0;
      bias.mix.fp32 = 12.0;
      bias.mix.sfu = 2.0;  // log/exp in the bias formula
      bias.mix.load_transactions_per_access = 8.0;
      bias.mix.divergence = 1.5;
      bias.mix.l2_hit_rate = 0.3;
      trace.push_back(std::move(bias));
    }
    return trace;
  }
};

}  // namespace

void register_nsp(Registry& r) { r.add(std::make_unique<Nsp>()); }

}  // namespace repro::suites
