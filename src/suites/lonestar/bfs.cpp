// LonestarGPU Breadth-First Search and its implementation variants
// (paper §IV.A.1.b, §V.B.1, Tables 3 & 4).
//
//   L-BFS         topology-driven, one node per thread
//   L-BFS-atomic  topology-driven, one node per thread, atomicMin updates
//   L-BFS-wla     topology-driven, one worklist flag per node
//   L-BFS-wlw     data-driven, one node per thread (too fast to measure)
//   L-BFS-wlc     data-driven, one edge per thread, Merrill's strategy
//                 (too fast to measure)
//
// The topology-driven variants execute the real fixpoint on the road-map
// graph via graph::topology_bfs; the number of sweeps depends on the
// intra-sweep update visibility, which in turn depends on the clock
// configuration (DESIGN.md §5.4). The data-driven variants execute the
// real worklist BFS (graph::bfs) and emit one kernel per level; their
// traces are deliberately short - on hardware these versions finish so
// quickly that the power sensor cannot capture them, and the same happens
// in our sensor model.
#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "suites/lonestar/inputs.hpp"

namespace repro::suites {
namespace {

using lonestar::kRoadMaps;
using lonestar::road_map;
using lonestar::RoadMap;
using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

/// Per-sweep work multiplier: the simulation lattices have far fewer
/// sweeps than the paper-scale road maps (diameter scales with sqrt(n)),
/// so each emitted sweep stands for kSweepWork paper sweeps' worth of
/// nodes on top of the node-count scale. Constant per input; ratios
/// between configurations are unaffected.
constexpr double kSweepWork[3] = {58.0, 27.0, 16.0};

class LBfsFamily : public SuiteWorkload {
 public:
  LBfsFamily(std::string name, std::string variant_tag)
      : SuiteWorkload(std::move(name), kLonestar, 5,
                      workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular),
        variant_(std::move(variant_tag)) {}

  std::string_view variant() const override { return variant_; }

  std::vector<InputSpec> inputs() const override {
    std::vector<InputSpec> specs;
    for (const auto& rm : kRoadMaps) {
      specs.push_back({rm.name, "lattice stand-in, see DESIGN.md §6"});
    }
    return specs;
  }

  ItemCounts items(std::size_t input) const override {
    return {kRoadMaps[input].paper_nodes, kRoadMaps[input].paper_edges};
  }

 protected:
  /// Paper-scale node count times the sweep-work multiplier.
  static double sweep_nodes(std::size_t input, const ExecContext& ctx) {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    return static_cast<double>(g.num_nodes()) *
           lonestar::node_scale(which, ctx.structural_seed) * kSweepWork[input];
  }

 private:
  std::string variant_;
};

// ---------------------------------------------------------------------------
// Topology-driven variants.

class LBfsTopology : public LBfsFamily {
 public:
  struct Params {
    double visibility_base;
    double visibility_gamma;
    bool atomic;          // atomicMin relaxations
    bool worklist_flags;  // wla: only flagged nodes do edge work
  };

  LBfsTopology(std::string name, std::string variant_tag, const Params& params)
      : LBfsFamily(std::move(name), std::move(variant_tag)), params_(params) {}

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const double visibility =
        ctx.visibility(params_.visibility_base, params_.visibility_gamma);
    const graph::SweepProfile profile =
        graph::topology_bfs(g, graph::best_source(g), visibility, ctx.structural_seed);

    const double nodes = sweep_nodes(input, ctx);
    LaunchTrace trace;
    trace.reserve(profile.sweeps + 1);
    trace.push_back(init_kernel(nodes));
    for (std::uint32_t s = 0; s < profile.sweeps; ++s) {
      if (params_.worklist_flags) {
        // wla: every thread reads its flag; only active neighbourhoods do
        // edge work. Active set per sweep from the real profile.
        const double active_frac =
            std::min(1.0, 12.0 * static_cast<double>(profile.updates_per_sweep[s]) /
                              static_cast<double>(g.num_nodes()));
        KernelLaunch k;
        k.name = "bfs_wla_sweep";
        k.threads_per_block = 256;
        k.blocks = nodes / 256.0;
        k.imbalance = shape.imbalance;
        // Every thread reads its flag (coalesced); only the active
        // neighbourhoods gather edges (scattered).
        k.mix.global_loads = 1.0 + shape.avg_degree * active_frac;
        k.mix.global_stores = active_frac;
        k.mix.int_alu = 3.0 + 5.0 * shape.avg_degree * active_frac;
        k.mix.load_transactions_per_access =
            (1.0 + shape.avg_degree * active_frac *
                       shape.load_transactions_per_access) /
            (1.0 + shape.avg_degree * active_frac);
        k.mix.divergence = 1.0 + (shape.divergence - 1.0) * active_frac * 4.0;
        k.mix.active_lane_fraction = std::clamp(active_frac * 3.0, 0.05, 0.9);
        k.mix.l2_hit_rate = shape.l2_hit_rate;
        k.mix.mlp = 0.22;  // sparse scattered work: latency exposed
        trace.push_back(std::move(k));
      } else {
        KernelLaunch k = graph_node_kernel("bfs_sweep", nodes, shape,
                                           /*loads_per_edge=*/1.0,
                                           /*stores_per_node=*/0.35);
        if (params_.atomic) {
          k.name = "bfs_atomic_sweep";
          k.mix.atomics = 0.30;  // atomicMin on improved nodes
          k.mix.atomic_contention = 1.4;
        }
        trace.push_back(std::move(k));
      }
    }
    return trace;
  }

 private:
  static KernelLaunch init_kernel(double nodes) {
    KernelLaunch k;
    k.name = "bfs_init";
    k.threads_per_block = 256;
    k.blocks = nodes / 256.0;
    k.mix.global_stores = 1.0;
    k.mix.int_alu = 3.0;
    k.mix.mlp = 8.0;
    return k;
  }

  Params params_;
};

// ---------------------------------------------------------------------------
// Data-driven variants (wlw: node frontier; wlc: edge frontier). These run
// the exact worklist BFS; total work is O(V + E) instead of
// O(sweeps * (V + E)), which is why they are 1-2 orders of magnitude
// faster - and unmeasurable with the 10 Hz sensor.

class LBfsDataDriven : public LBfsFamily {
 public:
  LBfsDataDriven(std::string name, std::string variant_tag, bool edge_parallel)
      : LBfsFamily(std::move(name), std::move(variant_tag)),
        edge_parallel_(edge_parallel) {}

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const graph::BfsProfile profile = graph::bfs(g, graph::best_source(g));
    const double scale = lonestar::node_scale(which, ctx.structural_seed);

    LaunchTrace trace;
    trace.reserve(profile.depth);
    for (std::uint32_t level = 0; level < profile.depth; ++level) {
      const double frontier_nodes =
          static_cast<double>(profile.frontier_nodes[level]) * scale;
      const double frontier_edges =
          static_cast<double>(profile.frontier_edges[level]) * scale;
      KernelLaunch k;
      k.threads_per_block = 256;
      if (edge_parallel_) {
        // Merrill-style: one edge per thread, coalesced gather of the
        // frontier's adjacency, prefix-sum based queue management.
        k.name = "bfs_wlc_level";
        k.blocks = std::max(frontier_edges, 32.0) / 256.0;
        k.mix.global_loads = 3.0;
        k.mix.global_stores = 0.8;
        k.mix.int_alu = 12.0;
        k.mix.load_transactions_per_access = 2.5;  // mostly coalesced
        k.mix.divergence = 1.2;
        k.mix.atomics = 0.05;
        k.mix.l2_hit_rate = shape.l2_hit_rate;
        k.mix.mlp = 8.0;
      } else {
        // One frontier node per thread; scattered adjacency reads.
        k.name = "bfs_wlw_level";
        k.blocks = std::max(frontier_nodes, 32.0) / 256.0;
        k.mix.global_loads = 2.0 + shape.avg_degree;
        k.mix.global_stores = 1.0;
        k.mix.int_alu = 8.0 + 4.0 * shape.avg_degree;
        k.mix.load_transactions_per_access = shape.load_transactions_per_access;
        k.mix.divergence = shape.divergence;
        k.mix.atomics = 1.0;  // queue append
        k.mix.atomic_contention = 1.6;
        k.mix.l2_hit_rate = shape.l2_hit_rate;
        k.mix.mlp = 5.0;
      }
      k.imbalance = shape.imbalance;
      trace.push_back(std::move(k));
    }
    return trace;
  }

 private:
  bool edge_parallel_;
};

}  // namespace

void register_lbfs(Registry& r) {
  r.add(std::make_unique<LBfsTopology>(
      "L-BFS", "",
      LBfsTopology::Params{.visibility_base = 0.42,
                           .visibility_gamma = 0.7,
                           .atomic = false,
                           .worklist_flags = false}));
  r.add(std::make_unique<LBfsTopology>(
      "L-BFS-atomic", "atomic",
      LBfsTopology::Params{.visibility_base = 0.95,
                           .visibility_gamma = 0.12,
                           .atomic = true,
                           .worklist_flags = false}));
  r.add(std::make_unique<LBfsTopology>(
      "L-BFS-wla", "wla",
      LBfsTopology::Params{.visibility_base = 0.42,
                           .visibility_gamma = 0.7,
                           .atomic = false,
                           .worklist_flags = true}));
  r.add(std::make_unique<LBfsDataDriven>("L-BFS-wlw", "wlw",
                                         /*edge_parallel=*/false));
  r.add(std::make_unique<LBfsDataDriven>("L-BFS-wlc", "wlc",
                                         /*edge_parallel=*/true));
}

}  // namespace repro::suites
