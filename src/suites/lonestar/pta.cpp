// LonestarGPU Points-to Analysis (paper §IV.A.1.e).
//
// Flow- and context-insensitive Andersen-style analysis, topology-driven.
// We generate constraint graphs with R-MAT (pointer-assignment graphs are
// heavily skewed), then run a real inclusion-constraint propagation to a
// fixpoint: each node's points-to set is the union of its predecessors'
// sets (bounded-width bitsets, like the benchmark's sparse bit vectors).
// The per-iteration volume of set-union work drives the kernel sizes. PTA
// is the paper's prime example of input-dependent behaviour (§VI rec. 5) -
// the three inputs (vim/pine/tshark) differ in size AND density.
#include <algorithm>
#include <array>
#include <memory>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct PtaInput {
  const char* name;
  std::uint32_t rmat_scale;   // 2^scale constraint variables
  double edge_factor;         // constraints per variable
  double paper_scale;         // work multiplier to paper-sized binaries
};

// vim (small), pine (medium), tshark (large): tshark has ~10x the
// constraints of vim in the original inputs.
constexpr std::array<PtaInput, 3> kInputs{{
    {"vim (small)", 12, 3.0, 5200.0},
    {"pine (medium)", 13, 3.5, 2440.0},
    {"tshark (large)", 14, 4.0, 2720.0},
}};

/// 128-bit points-to set approximation (the benchmark uses sparse bit
/// vectors; a fixed window keeps the host fixpoint cheap while preserving
/// the propagation dynamics).
struct PtsSet {
  std::array<std::uint64_t, 2> bits{};
  bool merge(const PtsSet& other) noexcept {
    bool changed = false;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      const std::uint64_t merged = bits[i] | other.bits[i];
      changed |= merged != bits[i];
      bits[i] = merged;
    }
    return changed;
  }
  int count() const noexcept {
    return __builtin_popcountll(bits[0]) + __builtin_popcountll(bits[1]);
  }
};

struct PtaProfile {
  std::vector<double> union_work_per_iter;  // set-words touched
  std::uint32_t iterations = 0;
};

PtaProfile propagate(const graph::CsrGraph& g) {
  std::vector<PtsSet> pts(g.num_nodes());
  // Seed: every 8th variable points to a distinct allocation site.
  for (graph::NodeId n = 0; n < g.num_nodes(); n += 8) {
    pts[n].bits[(n / 8) % 2] |= 1ULL << ((n / 16) % 64);
  }
  PtaProfile prof;
  bool changed = true;
  while (changed && prof.iterations < 64) {
    changed = false;
    double work = 0.0;
    for (graph::NodeId n = 0; n < g.num_nodes(); ++n) {
      for (const graph::NodeId pred : g.neighbors(n)) {
        work += 2.0 + pts[pred].count() * 0.25;
        if (pts[n].merge(pts[pred])) changed = true;
      }
    }
    prof.union_work_per_iter.push_back(work);
    ++prof.iterations;
  }
  return prof;
}

class Pta : public SuiteWorkload {
 public:
  Pta()
      : SuiteWorkload("PTA", kLonestar, 40, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    std::vector<InputSpec> specs;
    for (const PtaInput& in : kInputs) {
      specs.push_back({in.name, "R-MAT constraint graph stand-in"});
    }
    return specs;
  }

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const PtaInput& in = kInputs[input];
    const graph::CsrGraph g =
        graph::rmat(in.rmat_scale, in.edge_factor, ctx.structural_seed + input);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const PtaProfile profile = propagate(g);

    // Mild timing dependence: constraint evaluation order changes how many
    // iterations until the fixpoint stabilizes on device.
    const double visibility = ctx.visibility(0.5, 0.5);
    const double work_adjust = 0.8 + 0.4 * (1.0 - visibility);

    // PTA cycles through many small specialized kernels (40 global kernels
    // in the real code); we emit the four dominant ones per iteration.
    LaunchTrace trace;
    for (const double iter_work : profile.union_work_per_iter) {
      const double work = iter_work * in.paper_scale * work_adjust;
      KernelLaunch unions = graph_node_kernel(
          "pta_union", work / std::max(shape.avg_degree, 0.5), shape,
          /*loads_per_edge=*/3.0, /*stores_per_node=*/1.5,
          /*int_per_edge=*/10.0);
      unions.mix.divergence = std::min(shape.divergence * 1.4, 8.0);
      unions.mix.active_lane_fraction = 0.70 + 0.07 * static_cast<double>(input);
      trace.push_back(std::move(unions));

      KernelLaunch rules;
      rules.name = "pta_complex_rules";
      rules.threads_per_block = 128;
      rules.blocks = std::max(work / 8.0, 128.0) / 128.0;
      rules.mix.global_loads = 9.0;
      rules.mix.global_stores = 2.0;
      rules.mix.int_alu = 24.0;
      rules.mix.load_transactions_per_access = 14.0;  // pointer-chased sets
      rules.mix.divergence = 3.0;
      rules.mix.atomics = 0.4;
      rules.mix.l2_hit_rate = 0.25;
      rules.mix.mlp = 3.5;
      rules.imbalance = shape.imbalance * 1.2;
      trace.push_back(std::move(rules));
    }
    return trace;
  }
};

}  // namespace

void register_pta(Registry& r) { r.add(std::make_unique<Pta>()); }

}  // namespace repro::suites
