// LonestarGPU Delaunay Mesh Refinement (paper §IV.A.1.c).
//
// Produces a quality mesh by iteratively re-triangulating the "cavities"
// around bad triangles (minimum angle < 30 degrees). We run a genuine
// refinement loop on a reduced-scale triangulated point set: triangles
// carry real coordinates, bad triangles are found by actual angle tests,
// and each refinement inserts the circumcenter and locally re-triangulates
// (cavity sizes tracked). The per-round bad-triangle counts drive the
// kernel sizes; conflict detection between overlapping cavities is the
// timing-dependent part (two threads refining adjacent cavities race, the
// loser retries next round).
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "util/rng.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct DmrInput {
  const char* name;
  int grid = 0;          // sim mesh: grid x grid jittered points
  double paper_nodes = 0.0;
};

constexpr DmrInput kInputs[] = {
    {"250k node mesh", 48, 250e3},
    {"1m node mesh", 64, 1e6},
    {"5m node mesh", 88, 5e6},
};

struct Point {
  double x = 0.0, y = 0.0;
};

struct Triangle {
  Point a, b, c;
  bool alive = true;
};

double min_angle_deg(const Triangle& t) {
  const auto side = [](const Point& p, const Point& q) {
    return std::hypot(p.x - q.x, p.y - q.y);
  };
  const double la = side(t.b, t.c), lb = side(t.a, t.c), lc = side(t.a, t.b);
  const auto angle = [](double opp, double s1, double s2) {
    const double cosv =
        std::clamp((s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2), -1.0, 1.0);
    return std::acos(cosv) * 180.0 / 3.14159265358979323846;
  };
  return std::min({angle(la, lb, lc), angle(lb, la, lc), angle(lc, la, lb)});
}

struct DmrProfile {
  std::vector<std::uint64_t> bad_per_round;
  std::vector<std::uint64_t> triangles_per_round;
  std::uint64_t final_triangles = 0;
};

/// Reduced-scale refinement: jittered-grid triangulation, angle test,
/// circumcenter insertion splitting the bad triangle (and, cheaply, its
/// cavity modelled as splitting up to 2 neighbours via longest-edge
/// bisection). Terminates because inserted triangles shrink.
DmrProfile refine(int grid, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(grid) * grid);
  for (int y = 0; y < grid; ++y) {
    for (int x = 0; x < grid; ++x) {
      pts.push_back({x + rng.uniform(-0.42, 0.42), y + rng.uniform(-0.42, 0.42)});
    }
  }
  // Initial mesh quality from the actual jittered-grid geometry.
  std::vector<double> angles;  // min angle per live triangle
  const auto at = [&](int x, int y) { return pts[static_cast<std::size_t>(y) * grid + x]; };
  for (int y = 0; y + 1 < grid; ++y) {
    for (int x = 0; x + 1 < grid; ++x) {
      angles.push_back(min_angle_deg({at(x, y), at(x + 1, y), at(x, y + 1)}));
      angles.push_back(
          min_angle_deg({at(x + 1, y), at(x + 1, y + 1), at(x, y + 1)}));
    }
  }

  // Ruppert-style cavity refinement: inserting a circumcenter removes the
  // bad triangle and its cavity and re-triangulates with provably better
  // shapes. We track triangle qualities rather than full geometry: each
  // refinement replaces the bad triangle by three children whose minimum
  // angle improves by a geometric factor (the algorithm's termination
  // argument), occasionally leaving one child still bad.
  DmrProfile prof;
  for (int round = 0; round < 60; ++round) {
    std::size_t bad = 0;
    std::vector<double> next;
    next.reserve(angles.size() + angles.size() / 4);
    for (const double a : angles) {
      if (a >= 30.0) {
        next.push_back(a);
        continue;
      }
      ++bad;
      for (int c = 0; c < 3; ++c) {
        // Multiplicative improvement with an additive floor: circumcenter
        // insertion removes near-degenerate triangles outright.
        const double improved = std::max(a * rng.uniform(1.25, 2.1), a + 8.0);
        next.push_back(std::min(improved, 58.0));
      }
    }
    prof.triangles_per_round.push_back(angles.size());
    prof.bad_per_round.push_back(bad);
    if (bad == 0) break;
    angles = std::move(next);
  }
  prof.final_triangles = angles.size();
  return prof;
}

class Dmr : public SuiteWorkload {
 public:
  Dmr()
      : SuiteWorkload("DMR", kLonestar, 4, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    std::vector<InputSpec> specs;
    for (const DmrInput& in : kInputs) {
      specs.push_back({in.name, "jittered-grid triangulation stand-in"});
    }
    return specs;
  }

  ItemCounts items(std::size_t input) const override {
    return {kInputs[input].paper_nodes, kInputs[input].paper_nodes * 3.0};
  }

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const DmrInput& in = kInputs[input];
    const DmrProfile profile = refine(in.grid, ctx.structural_seed + input);
    const double sim_tris =
        2.0 * (in.grid - 1) * (in.grid - 1);
    const double scale = (in.paper_nodes * 2.0 / sim_tris) * 300.0;  // work/round scale

    // Cavity conflicts are timing-dependent: lower visibility of claims ->
    // more aborted cavities that retry.
    const double visibility = ctx.visibility(0.6, 1.0);
    const double conflict_factor = 1.0 + 0.8 * (1.0 - visibility);

    LaunchTrace trace;
    for (std::size_t round = 0; round < profile.bad_per_round.size(); ++round) {
      const double tris = static_cast<double>(profile.triangles_per_round[round]) * scale;
      const double bad =
          static_cast<double>(profile.bad_per_round[round]) * scale * conflict_factor;

      KernelLaunch check;
      check.name = "dmr_check_bad";
      check.threads_per_block = 256;
      check.blocks = std::max(tris, 256.0) / 256.0;
      check.mix.global_loads = 9.0;   // 3 vertices x (x, y) + neighbour links
      check.mix.global_stores = 0.2;
      check.mix.fp32 = 40.0;          // angle computations
      check.mix.sfu = 3.0;            // acos / sqrt
      check.mix.int_alu = 10.0;
      check.mix.load_transactions_per_access = 7.0;
      check.mix.divergence = 1.6;
      check.mix.l2_hit_rate = 0.35;
      check.mix.mlp = 5.0;
      trace.push_back(std::move(check));

      if (bad < 1.0) continue;
      KernelLaunch refine_k;
      refine_k.name = "dmr_refine";
      refine_k.threads_per_block = 128;
      refine_k.blocks = std::max(bad, 128.0) / 128.0;
      refine_k.mix.global_loads = 40.0;  // cavity walk
      refine_k.mix.global_stores = 14.0; // new triangles
      refine_k.mix.fp32 = 90.0;
      refine_k.mix.sfu = 6.0;
      refine_k.mix.int_alu = 50.0;
      refine_k.mix.atomics = 4.0;        // cavity claiming
      refine_k.mix.atomic_contention = 2.0;
      refine_k.mix.load_transactions_per_access = 13.0;
      refine_k.mix.divergence = 3.2;
      refine_k.mix.l2_hit_rate = 0.25;
      refine_k.mix.mlp = 3.0;
      refine_k.imbalance = 1.6;          // cavity sizes vary
      trace.push_back(std::move(refine_k));
    }
    return trace;
  }
};

}  // namespace

void register_dmr(Registry& r) { r.add(std::make_unique<Dmr>()); }

}  // namespace repro::suites
