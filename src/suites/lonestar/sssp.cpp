// LonestarGPU Single-Source Shortest Paths and variants
// (paper §IV.A.1.f, §V.B.1, Table 3).
//
//   SSSP      topology-driven Bellman-Ford, one node per thread
//   SSSP-wln  data-driven, one node per thread (no priority order: many
//             redundant re-relaxations -> ~2x WORSE than topology-driven)
//   SSSP-wlc  data-driven, one edge per thread, Merrill's strategy
//             (~2x better)
//
// The topology-driven variant runs the real weighted fixpoint
// (graph::topology_sssp); wln runs a real FIFO worklist SSSP on the host
// and counts the actual number of node re-relaxations, which is what makes
// it genuinely inefficient on weighted road maps.
#include <algorithm>
#include <deque>
#include <memory>

#include "graph/algorithms.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "suites/lonestar/inputs.hpp"

namespace repro::suites {
namespace {

using lonestar::kRoadMaps;
using lonestar::road_map;
using lonestar::RoadMap;
using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

constexpr double kSweepWork[3] = {28.0, 16.0, 6.0};
// Data-driven variants: per-pop work factors calibrated to the paper's
// Table 3 totals (wln does massive redundant re-relaxation and suffers
// small-kernel overheads; wlc is Merrill-efficient but still repeats work).
constexpr double kWlnWork = 68.0;
constexpr double kWlcWork = 17.0;

/// Real FIFO (Bellman-Ford-queue) SSSP; returns per-"round" pop counts.
/// Rounds batch the queue like a GPU bulk-synchronous worklist would.
struct WorklistProfile {
  std::vector<std::uint64_t> pops_per_round;
  std::uint64_t total_pops = 0;
};

WorklistProfile worklist_sssp(const graph::CsrGraph& g, graph::NodeId source) {
  constexpr auto kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dist(g.num_nodes(), kInf);
  std::vector<char> queued(g.num_nodes(), 0);
  std::vector<graph::NodeId> current{source};
  dist[source] = 0;
  WorklistProfile prof;
  while (!current.empty()) {
    prof.pops_per_round.push_back(current.size());
    prof.total_pops += current.size();
    std::vector<graph::NodeId> next;
    for (const graph::NodeId n : current) queued[n] = 0;
    for (const graph::NodeId n : current) {
      const auto nbrs = g.neighbors(n);
      const auto wts = g.weights(n);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::uint64_t nd = dist[n] + wts[i];
        if (nd < dist[nbrs[i]]) {
          dist[nbrs[i]] = nd;
          if (!queued[nbrs[i]]) {
            queued[nbrs[i]] = 1;
            next.push_back(nbrs[i]);
          }
        }
      }
    }
    current = std::move(next);
  }
  return prof;
}

class SsspFamily : public SuiteWorkload {
 public:
  SsspFamily(std::string name, std::string variant_tag)
      : SuiteWorkload(std::move(name), kLonestar, 2,
                      workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular),
        variant_(std::move(variant_tag)) {}

  std::string_view variant() const override { return variant_; }

  std::vector<InputSpec> inputs() const override {
    std::vector<InputSpec> specs;
    for (const auto& rm : kRoadMaps) {
      specs.push_back({rm.name, "lattice stand-in, see DESIGN.md §6"});
    }
    return specs;
  }

  ItemCounts items(std::size_t input) const override {
    return {kRoadMaps[input].paper_nodes, kRoadMaps[input].paper_edges};
  }

 protected:
  static double paper_nodes(std::size_t input, const ExecContext& ctx) {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    return static_cast<double>(g.num_nodes()) *
           lonestar::node_scale(which, ctx.structural_seed);
  }

 private:
  std::string variant_;
};

class SsspTopology : public SsspFamily {
 public:
  SsspTopology() : SsspFamily("SSSP", "") {}

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    // Weighted relaxations propagate less per sweep than BFS levels.
    const double visibility = ctx.visibility(0.38, 0.8);
    const graph::SweepProfile profile =
        graph::topology_sssp(g, graph::best_source(g), visibility, ctx.structural_seed);

    const double nodes = paper_nodes(input, ctx) * kSweepWork[input];
    LaunchTrace trace;
    trace.reserve(profile.sweeps);
    for (std::uint32_t s = 0; s < profile.sweeps; ++s) {
      // Relaxation reads both the neighbour index and the edge weight.
      KernelLaunch k = graph_node_kernel("sssp_sweep", nodes, shape,
                                         /*loads_per_edge=*/2.0,
                                         /*stores_per_node=*/0.4,
                                         /*int_per_edge=*/6.0);
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

class SsspWln : public SsspFamily {
 public:
  SsspWln() : SsspFamily("SSSP-wln", "wln") {}

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const WorklistProfile profile = worklist_sssp(g, graph::best_source(g));
    const double scale = lonestar::node_scale(which, ctx.structural_seed) *
                         kSweepWork[input] * kWlnWork;

    LaunchTrace trace;
    trace.reserve(profile.pops_per_round.size());
    for (const std::uint64_t pops : profile.pops_per_round) {
      KernelLaunch k = graph_node_kernel(
          "sssp_wln_round", static_cast<double>(pops) * scale, shape,
          /*loads_per_edge=*/2.0, /*stores_per_node=*/1.2,
          /*int_per_edge=*/6.0);
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

class SsspWlc : public SsspFamily {
 public:
  SsspWlc() : SsspFamily("SSSP-wlc", "wlc") {}

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    const WorklistProfile profile = worklist_sssp(g, graph::best_source(g));
    const double edge_scale = lonestar::node_scale(which, ctx.structural_seed) *
                              kSweepWork[input] * kWlcWork * g.average_degree();

    // Merrill's edge-parallel gather: coalesced, low divergence, so the
    // same relaxation structure costs roughly half the time of the
    // topology-driven version.
    LaunchTrace trace;
    trace.reserve(profile.pops_per_round.size());
    for (const std::uint64_t pops : profile.pops_per_round) {
      KernelLaunch k;
      k.name = "sssp_wlc_round";
      k.threads_per_block = 256;
      k.blocks = std::max(static_cast<double>(pops) * edge_scale, 32.0) / 256.0;
      k.mix.global_loads = 3.0;
      k.mix.global_stores = 0.6;
      k.mix.int_alu = 14.0;
      k.mix.load_transactions_per_access = 3.0;
      k.mix.divergence = 1.25;
      k.mix.atomics = 0.08;
      k.mix.l2_hit_rate = 0.35;
      k.mix.mlp = 2.0;
      trace.push_back(std::move(k));
    }
    return trace;
  }
};

}  // namespace

void register_sssp(Registry& r) {
  r.add(std::make_unique<SsspTopology>());
  r.add(std::make_unique<SsspWln>());
  r.add(std::make_unique<SsspWlc>());
}

}  // namespace repro::suites
