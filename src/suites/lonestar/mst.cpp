// LonestarGPU Minimum Spanning Tree (Boruvka) - paper §IV.A.1.d.
//
// Runs the real Boruvka algorithm on the road map (graph::boruvka) to get
// the genuine per-round component counts and edge-scan volumes. On the
// GPU, each round's minimum-edge search races concurrently-merging
// components: relaxations that lose the race must retry. How often that
// happens is timing-dependent, which is why MST shows the largest runtime
// increase of all programs when the core clock drops to 614 MHz (paper
// §V.A.1: +25% runtime from a 13% clock reduction). We model the retry
// rate through the same visibility mechanism as the other irregular codes,
// with a negative clock-ratio sensitivity.
#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "suites/lonestar/inputs.hpp"

namespace repro::suites {
namespace {

using lonestar::kRoadMaps;
using lonestar::road_map;
using lonestar::RoadMap;
using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

constexpr double kRoundWork[3] = {290.0, 330.0, 152.0};

class Mst : public SuiteWorkload {
 public:
  Mst()
      : SuiteWorkload("MST", kLonestar, 7, workloads::Boundedness::kMemory,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    std::vector<InputSpec> specs;
    for (const auto& rm : kRoadMaps) {
      specs.push_back({rm.name, "lattice stand-in, see DESIGN.md §6"});
    }
    return specs;
  }

  ItemCounts items(std::size_t input) const override {
    return {kRoadMaps[input].paper_nodes, kRoadMaps[input].paper_edges};
  }

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const auto which = static_cast<RoadMap>(input);
    const graph::CsrGraph& g = road_map(which, ctx.structural_seed);
    const GraphKernelShape shape = graph_shape(g, ctx.structural_seed);
    const graph::BoruvkaProfile profile = graph::boruvka(g);
    const double scale =
        lonestar::node_scale(which, ctx.structural_seed) * kRoundWork[input];

    // Timing-dependent CAS retries: less intra-round visibility of merges
    // means more stale minimum-edge candidates that must be recomputed.
    const double visibility = ctx.visibility(0.55, -2.5);
    const double retry_factor = 1.0 + 1.2 * (1.0 - visibility);

    LaunchTrace trace;
    const std::size_t rounds = profile.components_per_round.size();
    for (std::size_t round = 0; round < rounds; ++round) {
      const double components =
          static_cast<double>(profile.components_per_round[round]) * scale;
      const double edges_scanned =
          static_cast<double>(profile.edges_scanned_per_round[round]) * scale *
          retry_factor;

      // Kernel 1: find minimum outgoing edge per node (scans adjacency).
      KernelLaunch find = graph_node_kernel(
          "mst_find_min", edges_scanned / std::max(shape.avg_degree, 0.5), shape,
          /*loads_per_edge=*/2.2, /*stores_per_node=*/0.5,
          /*int_per_edge=*/7.0);
      trace.push_back(std::move(find));

      // Kernel 2: component hooking via atomicCAS (union-find on device).
      KernelLaunch hook;
      hook.name = "mst_union";
      hook.threads_per_block = 256;
      hook.blocks = std::max(components, 256.0) / 256.0;
      hook.mix.global_loads = 6.0;  // pointer chasing in union-find
      hook.mix.global_stores = 1.0;
      hook.mix.int_alu = 14.0;
      hook.mix.atomics = 1.5 * retry_factor;
      hook.mix.atomic_contention = 2.5;
      hook.mix.load_transactions_per_access = 12.0;  // parent chains scatter
      hook.mix.divergence = 2.2;
      hook.mix.l2_hit_rate = 0.30;
      hook.mix.mlp = 3.0;
      hook.imbalance = shape.imbalance;
      trace.push_back(std::move(hook));

      // Kernel 3: graph contraction / edge filtering every other round.
      if (round % 2 == 0) {
        KernelLaunch compact = graph_node_kernel(
            "mst_compact", components * shape.avg_degree, shape,
            /*loads_per_edge=*/1.0, /*stores_per_node=*/1.0);
        trace.push_back(std::move(compact));
      }
    }
    return trace;
  }
};

}  // namespace

void register_mst(Registry& r) { r.add(std::make_unique<Mst>()); }

}  // namespace repro::suites
