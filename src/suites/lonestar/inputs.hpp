// Shared LonestarGPU graph inputs.
//
// The paper's road-map inputs (paper Table 1) and our simulation-scale
// stand-ins (DESIGN.md §6):
//   Great Lakes region: 2.7M nodes /  7M edges  -> 120x120 lattice (14.4k)
//   Western USA:        6.0M nodes / 15M edges  -> 160x160 lattice (25.6k)
//   entire USA:          24M nodes / 58M edges  -> 220x220 lattice (48.4k)
// The lattices preserve what matters for BFS/SSSP/MST behaviour: average
// degree ~2.4, enormous diameter, near-planar locality.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace repro::suites::lonestar {

enum class RoadMap { kGreatLakes = 0, kWesternUsa = 1, kUsa = 2 };

struct RoadMapInput {
  RoadMap which;
  const char* name;
  double paper_nodes;
  double paper_edges;
  std::uint32_t sim_width;
  std::uint32_t sim_height;
};

inline constexpr RoadMapInput kRoadMaps[] = {
    {RoadMap::kGreatLakes, "Great Lakes (2.7m nodes, 7m edges)", 2.7e6, 7e6, 120, 120},
    {RoadMap::kWesternUsa, "Western USA (6m nodes, 15m edges)", 6e6, 15e6, 160, 160},
    {RoadMap::kUsa, "USA (24m nodes, 58m edges)", 24e6, 58e6, 220, 220},
};

/// Cached simulation-scale road map (built once per process per input).
const graph::CsrGraph& road_map(RoadMap which, std::uint64_t structural_seed);

/// Node scale factor from simulation size to paper size.
double node_scale(RoadMap which, std::uint64_t structural_seed);

}  // namespace repro::suites::lonestar
