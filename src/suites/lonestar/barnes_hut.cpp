// LonestarGPU Barnes-Hut n-body (paper §IV.A.1.a).
//
// Per timestep the real code runs a pipeline of kernels: bounding box,
// octree build, center-of-mass summarization, spatial sort, force
// calculation, and integration. We build an actual quadtree over a sampled
// body distribution (Plummer-like clustering) and measure the average
// number of cell interactions per body under the Barnes-Hut opening
// criterion - that count sets the force kernel's per-thread work, which is
// where BH's input-dependent compute intensity comes from (clustered
// distributions open more cells).
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "suites/common.hpp"
#include "suites/factories.hpp"
#include "util/rng.hpp"

namespace repro::suites {
namespace {

using workloads::ExecContext;
using workloads::InputSpec;
using workloads::KernelLaunch;
using workloads::LaunchTrace;

struct BhInput {
  const char* name;
  double bodies;
  int timesteps;
};

constexpr BhInput kInputs[] = {
    {"10k bodies, 10k timesteps", 10e3, 220},  // timesteps scaled /45
    {"100k bodies, 10 timesteps", 100e3, 10},
    {"1m bodies, 1 timestep", 1e6, 1},
};

// Work multiplier folding in the tree passes, lock retries and kernel
// repetitions the 6-kernel pipeline summary does not model explicitly;
// calibrated so active runtimes land at K20c-plausible seconds.
constexpr double kWorkScale[3] = {145.0, 330.0, 310.0};

struct QuadNode {
  double cx = 0.0, cy = 0.0, half = 0.0;  // center and half-size
  double mx = 0.0, my = 0.0, mass = 0.0;  // center of mass
  int children[4] = {-1, -1, -1, -1};
  int body = -1;  // leaf body index, -1 if internal/empty
  bool leaf = true;
};

struct BodySample {
  double x = 0.0, y = 0.0;
};

class Quadtree {
 public:
  explicit Quadtree(double half) { nodes_.push_back({0.0, 0.0, half}); }

  void insert(const BodySample& b) { insert_into(0, b); }

  void summarize() { summarize_node(0); }

  /// Average number of nodes visited per body with opening angle theta.
  double interactions(const std::vector<BodySample>& bodies, double theta) const {
    if (bodies.empty()) return 0.0;
    std::uint64_t visits = 0;
    for (const BodySample& b : bodies) visits += walk(0, b, theta);
    return static_cast<double>(visits) / static_cast<double>(bodies.size());
  }

  std::size_t size() const noexcept { return nodes_.size(); }
  int depth() const { return depth_of(0); }

 private:
  void insert_into(int idx, const BodySample& b) {
    for (;;) {
      QuadNode& node = nodes_[static_cast<std::size_t>(idx)];
      if (node.leaf && node.body < 0) {  // empty leaf
        node.body = 0;
        node.mx = b.x;
        node.my = b.y;
        node.mass = 1.0;
        return;
      }
      if (node.leaf) {
        // Split: push existing body down.
        const BodySample old{node.mx, node.my};
        node.leaf = false;
        node.body = -1;
        insert_into(child_for(idx, old), old);
      }
      idx = child_for(idx, b);
    }
  }

  int child_for(int idx, const BodySample& b) {
    QuadNode& node = nodes_[static_cast<std::size_t>(idx)];
    const int qx = b.x >= node.cx ? 1 : 0;
    const int qy = b.y >= node.cy ? 1 : 0;
    const int q = qy * 2 + qx;
    if (node.children[q] < 0) {
      const double h = node.half / 2.0;
      QuadNode child;
      child.cx = node.cx + (qx ? h : -h);
      child.cy = node.cy + (qy ? h : -h);
      child.half = h;
      nodes_.push_back(child);
      // note: push_back may invalidate `node`; recompute.
      nodes_[static_cast<std::size_t>(idx)].children[q] =
          static_cast<int>(nodes_.size() - 1);
    }
    return nodes_[static_cast<std::size_t>(idx)].children[q];
  }

  void summarize_node(int idx) {
    QuadNode& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.leaf) return;
    double mx = 0.0, my = 0.0, mass = 0.0;
    for (const int c : node.children) {
      if (c < 0) continue;
      summarize_node(c);
      const QuadNode& child = nodes_[static_cast<std::size_t>(c)];
      mx += child.mx * child.mass;
      my += child.my * child.mass;
      mass += child.mass;
    }
    node.mass = mass;
    if (mass > 0.0) {
      node.mx = mx / mass;
      node.my = my / mass;
    }
  }

  std::uint64_t walk(int idx, const BodySample& b, double theta) const {
    const QuadNode& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.mass <= 0.0) return 0;
    const double dist = std::hypot(b.x - node.mx, b.y - node.my) + 1e-9;
    if (node.leaf || (2.0 * node.half) / dist < theta) return 1;
    std::uint64_t visits = 1;
    for (const int c : node.children) {
      if (c >= 0) visits += walk(c, b, theta);
    }
    return visits;
  }

  int depth_of(int idx) const {
    const QuadNode& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.leaf) return 1;
    int best = 0;
    for (const int c : node.children) {
      if (c >= 0) best = std::max(best, depth_of(c));
    }
    return best + 1;
  }

  std::vector<QuadNode> nodes_;
};

class BarnesHut : public SuiteWorkload {
 public:
  BarnesHut()
      : SuiteWorkload("BH", kLonestar, 9, workloads::Boundedness::kBalanced,
                      workloads::Regularity::kIrregular) {}

  std::vector<InputSpec> inputs() const override {
    return {{kInputs[0].name, "timestep count scaled /45"},
            {kInputs[1].name, "as in the paper"},
            {kInputs[2].name, "as in the paper"}};
  }

  LaunchTrace trace(std::size_t input, const ExecContext& ctx) const override {
    const BhInput& in = kInputs[input];
    const double scaled_bodies = in.bodies * kWorkScale[input];

    // Sampled Plummer-ish distribution; interaction counts come from the
    // real quadtree walk.
    util::Rng rng{ctx.structural_seed + input * 13};
    constexpr int kSample = 3000;
    std::vector<BodySample> bodies;
    bodies.reserve(kSample);
    Quadtree tree{1000.0};
    for (int i = 0; i < kSample; ++i) {
      // Clustered radial profile: most mass near the core.
      const double r = 900.0 * std::pow(rng.uniform(), 2.2);
      const double phi = rng.uniform(0.0, 6.28318530717958648);
      bodies.push_back({r * std::cos(phi), r * std::sin(phi)});
      tree.insert(bodies.back());
    }
    tree.summarize();
    // Interactions grow ~log(n); extrapolate from the sample.
    const double theta = 0.5;
    const double sampled = tree.interactions(bodies, theta);
    const double interactions =
        sampled * std::log2(in.bodies) / std::log2(static_cast<double>(kSample));
    const double tree_nodes =
        static_cast<double>(tree.size()) / kSample * in.bodies * kWorkScale[input];

    // Tree-build irregularity is timing-sensitive (lock-free insertion
    // retries).
    const double visibility = ctx.visibility(0.6, -1.0);
    const double retry = 1.0 + 0.5 * (1.0 - visibility);

    constexpr double kUtilization[3] = {0.78, 0.92, 1.0};
    LaunchTrace trace;
    for (int step = 0; step < in.timesteps; ++step) {
      trace.push_back(bounding_box_kernel(scaled_bodies));
      trace.push_back(build_tree_kernel(scaled_bodies, retry));
      trace.push_back(summarize_kernel(tree_nodes));
      trace.push_back(sort_kernel(scaled_bodies));
      KernelLaunch force = force_kernel(scaled_bodies, interactions);
      force.mix.active_lane_fraction = kUtilization[input];
      trace.push_back(std::move(force));
      trace.push_back(integrate_kernel(scaled_bodies));
    }
    return trace;
  }

 private:
  static KernelLaunch bounding_box_kernel(double bodies) {
    KernelLaunch k;
    k.name = "bh_bounding_box";
    k.threads_per_block = 512;
    k.blocks = std::max(bodies / 4096.0, 13.0);
    k.mix.global_loads = 8.0;
    k.mix.fp32 = 16.0;
    k.mix.int_alu = 8.0;
    k.mix.shared_accesses = 10.0;
    k.mix.syncs = 6.0;
    k.mix.l2_hit_rate = 0.2;
    k.mix.mlp = 8.0;
    return k;
  }

  static KernelLaunch build_tree_kernel(double bodies, double retry) {
    KernelLaunch k;
    k.name = "bh_build_tree";
    k.threads_per_block = 256;
    k.blocks = std::max(bodies, 256.0) / 256.0;
    k.mix.global_loads = 18.0 * retry;  // pointer chase down the octree
    k.mix.global_stores = 2.0;
    k.mix.int_alu = 30.0 * retry;
    k.mix.fp32 = 10.0;
    k.mix.atomics = 2.5 * retry;  // child-pointer CAS
    k.mix.atomic_contention = 3.0;
    k.mix.load_transactions_per_access = 16.0;
    k.mix.divergence = 3.5;
    k.mix.l2_hit_rate = 0.4;
    k.mix.mlp = 2.5;
    k.imbalance = 1.4;
    return k;
  }

  static KernelLaunch summarize_kernel(double tree_nodes) {
    KernelLaunch k;
    k.name = "bh_summarize";
    k.threads_per_block = 256;
    k.blocks = std::max(tree_nodes, 256.0) / 256.0;
    k.mix.global_loads = 10.0;
    k.mix.global_stores = 4.0;
    k.mix.fp32 = 20.0;
    k.mix.load_transactions_per_access = 10.0;
    k.mix.divergence = 2.0;
    k.mix.l2_hit_rate = 0.45;
    k.mix.mlp = 4.0;
    return k;
  }

  static KernelLaunch sort_kernel(double bodies) {
    KernelLaunch k;
    k.name = "bh_sort";
    k.threads_per_block = 256;
    k.blocks = std::max(bodies, 256.0) / 256.0;
    k.mix.global_loads = 6.0;
    k.mix.global_stores = 2.0;
    k.mix.int_alu = 12.0;
    k.mix.load_transactions_per_access = 6.0;
    k.mix.divergence = 1.5;
    k.mix.l2_hit_rate = 0.4;
    k.mix.mlp = 5.0;
    return k;
  }

  static KernelLaunch force_kernel(double bodies, double interactions) {
    KernelLaunch k;
    k.name = "bh_force";
    k.threads_per_block = 256;
    k.blocks = std::max(bodies, 256.0) / 256.0;
    k.regs_per_thread = 40;
    // ~20 flops per cell interaction plus an rsqrt.
    k.mix.fp32 = 20.0 * interactions;
    k.mix.sfu = 1.0 * interactions;
    k.mix.int_alu = 6.0 * interactions;
    k.mix.global_loads = 1.2 * interactions;  // cached tree reads
    k.mix.load_transactions_per_access = 4.0; // sorted bodies walk similar paths
    k.mix.divergence = 1.8;
    k.mix.l2_hit_rate = 0.75;
    k.mix.shared_accesses = 0.4 * interactions;
    k.mix.mlp = 4.0;
    k.imbalance = 1.25;
    return k;
  }

  static KernelLaunch integrate_kernel(double bodies) {
    KernelLaunch k;
    k.name = "bh_integrate";
    k.threads_per_block = 512;
    k.blocks = std::max(bodies, 512.0) / 512.0;
    k.mix.global_loads = 6.0;
    k.mix.global_stores = 4.0;
    k.mix.fp32 = 18.0;
    k.mix.l2_hit_rate = 0.1;
    k.mix.mlp = 8.0;
    return k;
  }
};

}  // namespace

void register_barnes_hut(Registry& r) { r.add(std::make_unique<BarnesHut>()); }

}  // namespace repro::suites
