// GPU operating configurations (paper §IV.B).
//
// The study uses four: default (705/2600), 614 (614/2600), 324 (324/324)
// and ECC (705/2600 with ECC on). Each carries the DVFS voltages used by
// the power model; lowering the clock also lowers the voltage, which is
// why compute-bound codes can see super-linear power reductions (§V.A.1).
#pragma once

#include <span>
#include <string>
#include <string_view>

namespace repro::sim {

struct GpuConfig {
  std::string name;
  double core_mhz = 705.0;
  double mem_mhz = 2600.0;
  double core_voltage = 1.00;  // relative to nominal
  double mem_voltage = 1.00;
  bool ecc = false;
};

/// The four configurations evaluated in the paper, in presentation order:
/// default, 614, 324, ecc.
std::span<const GpuConfig> standard_configs();

/// Lookup by name ("default", "614", "324", "ecc"). Throws
/// std::invalid_argument on unknown names.
const GpuConfig& config_by_name(std::string_view name);

}  // namespace repro::sim
