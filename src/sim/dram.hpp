// GDDR5 DRAM model with ECC (paper §III, §V.A.3).
//
// ECC is modeled where NVIDIA puts it on the K20: in-band in main memory.
// Enabling ECC (a) reserves 12.5% of capacity, (b) costs extra bus traffic
// for the ECC words, and (c) adds controller latency. Crucially, the ECC
// traffic is charged *per transaction*: a scattered (uncoalesced) access
// pattern that issues many sparsely-filled transactions pays the ECC tax
// many times over, which is the paper's explanation for LonestarGPU's
// energy increase exceeding its runtime increase under ECC.
#pragma once

#include "sim/device.hpp"
#include "sim/gpuconfig.hpp"

namespace repro::sim {

class DramModel {
 public:
  DramModel(const KeplerDevice& device, const GpuConfig& config) noexcept
      : device_(&device), config_(&config) {}

  /// Achievable bandwidth in bytes/s: peak at the configured memory clock,
  /// derated by a fixed controller efficiency and, with ECC, by the
  /// bandwidth cost of in-band ECC.
  double effective_bandwidth() const noexcept {
    double bw = device_->peak_dram_bw(config_->mem_mhz) * kControllerEfficiency;
    if (config_->ecc) bw *= kEccBandwidthDerate;
    return bw;
  }

  /// Round-trip latency in seconds.
  double latency_s() const noexcept {
    double ns = device_->dram_latency_ns(config_->mem_mhz);
    if (config_->ecc) ns += kEccLatencyNs;
    return ns * 1e-9;
  }

  /// Bus bytes consumed by one 128-byte transaction, including in-band ECC
  /// words when enabled. Independent of how many of the 128 bytes the warp
  /// actually uses - that is what makes uncoalesced access expensive.
  double bus_bytes_per_transaction() const noexcept {
    double bytes = static_cast<double>(device_->dram_segment_bytes);
    if (config_->ecc) bytes *= 1.0 + kEccBytesFraction;
    return bytes;
  }

  /// Usable device memory in bytes (ECC reserves 12.5%).
  double usable_memory_bytes() const noexcept {
    constexpr double kTotal = 5.0 * 1024 * 1024 * 1024;  // 5 GB K20c
    return config_->ecc ? kTotal * (1.0 - 0.125) : kTotal;
  }

  bool ecc_enabled() const noexcept { return config_->ecc; }

  // Model constants, public so tests and DESIGN.md can reference them.
  static constexpr double kControllerEfficiency = 0.80;
  static constexpr double kEccBandwidthDerate = 0.95;
  static constexpr double kEccBytesFraction = 0.125;   // 16 B per 128 B
  static constexpr double kEccLatencyNs = 25.0;

 private:
  const KeplerDevice* device_;
  const GpuConfig* config_;
};

}  // namespace repro::sim
