#include "sim/engine.hpp"

#include "obs/trace.hpp"

namespace repro::sim {

TraceResult run_trace(const KeplerDevice& device, const GpuConfig& config,
                      const workloads::LaunchTrace& trace) {
  obs::Span span("timing");
  span.arg("config", config.name)
      .arg("launches", static_cast<std::uint64_t>(trace.size()));
  TraceResult result;
  result.phases.reserve(trace.size());
  for (const workloads::KernelLaunch& launch : trace) {
    const KernelResult k = time_kernel(device, config, launch);
    const bool mergeable = !result.phases.empty() &&
                           result.phases.back().kernel_name == launch.name &&
                           launch.host_gap_before_s <= 0.0;
    if (mergeable) {
      Phase& p = result.phases.back();
      p.duration_s += k.time_s;
      p.activity += k.activity;
    } else {
      Phase p;
      p.kernel_name = launch.name;
      p.host_gap_before_s = launch.host_gap_before_s;
      p.duration_s = k.time_s;
      p.activity = k.activity;
      p.memory_bound = k.memory_bound();
      result.phases.push_back(std::move(p));
    }
    result.active_time_s += k.time_s;
    result.total_span_s += k.time_s + launch.host_gap_before_s;
    result.total_activity += k.activity;
  }
  return result;
}

}  // namespace repro::sim
