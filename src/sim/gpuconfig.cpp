#include "sim/gpuconfig.hpp"

#include <array>
#include <stdexcept>

namespace repro::sim {

namespace {

const std::array<GpuConfig, 4>& configs() {
  static const std::array<GpuConfig, 4> kConfigs{{
      {"default", 705.0, 2600.0, 1.00, 1.00, false},
      {"614", 614.0, 2600.0, 0.93, 1.00, false},
      {"324", 324.0, 324.0, 0.85, 0.88, false},
      {"ecc", 705.0, 2600.0, 1.00, 1.00, true},
  }};
  return kConfigs;
}

}  // namespace

std::span<const GpuConfig> standard_configs() { return configs(); }

const GpuConfig& config_by_name(std::string_view name) {
  for (const GpuConfig& c : configs()) {
    if (c.name == name) return c;
  }
  throw std::invalid_argument("unknown GPU config: " + std::string(name));
}

}  // namespace repro::sim
