// Kernel timing engine.
//
// Converts a KernelLaunch under a GpuConfig into (a) an execution time and
// (b) the architectural event counts the power model charges energy for.
// The model is throughput/latency analytical in the style of Hong & Kim:
// per-SM pipeline occupancy for the compute side, bandwidth + Little's-law
// latency limits for the memory side, blended by an occupancy-dependent
// overlap factor, with wave-amortized load imbalance on top. The two clock
// domains (core, memory) enter exactly where the paper's analysis puts
// them (§V.A): core frequency scales arithmetic/issue/L2 time, memory
// frequency scales DRAM bandwidth and latency.
#pragma once

#include "sim/device.hpp"
#include "sim/dram.hpp"
#include "sim/gpuconfig.hpp"
#include "sim/occupancy.hpp"
#include "workloads/kernel.hpp"

namespace repro::sim {

/// Architectural activity of one kernel execution; inputs to the power
/// model. All counts are totals over the launch.
struct Activity {
  double warp_instructions = 0.0;  // issue slots consumed (incl. replays)
  double fp32_ops = 0.0;           // lane-ops actually executed
  double fp64_ops = 0.0;
  double int_ops = 0.0;
  double sfu_ops = 0.0;
  double shared_accesses = 0.0;    // warp-level, incl. conflict replays
  double l2_transactions = 0.0;
  double dram_transactions = 0.0;
  double dram_bus_bytes = 0.0;     // incl. ECC in-band traffic
  double atomic_ops = 0.0;         // lane-level atomic operations

  Activity& operator+=(const Activity& other) noexcept;
};

struct KernelResult {
  double time_s = 0.0;
  double compute_time_s = 0.0;  // compute-side bound (pre-overlap)
  double memory_time_s = 0.0;   // memory-side bound (pre-overlap)
  Occupancy occ;
  Activity activity;

  bool memory_bound() const noexcept { return memory_time_s > compute_time_s; }
};

/// Times a single kernel launch on `device` under `config`.
KernelResult time_kernel(const KeplerDevice& device, const GpuConfig& config,
                         const workloads::KernelLaunch& launch);

}  // namespace repro::sim
