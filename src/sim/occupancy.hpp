// CUDA-style occupancy calculation for the Kepler device.
#pragma once

#include "sim/device.hpp"

namespace repro::sim {

struct Occupancy {
  int blocks_per_sm = 0;
  int warps_per_sm = 0;       // resident warps
  double fraction = 0.0;      // warps_per_sm / max_warps_per_sm
  enum class Limiter { kBlocks, kWarps, kRegisters, kSharedMemory, kNone } limiter =
      Limiter::kNone;
};

/// Resident blocks/warps per SM given a block's resource footprint.
/// threads_per_block is clamped to [1, max_threads_per_block].
Occupancy occupancy(const KeplerDevice& device, int threads_per_block,
                    int regs_per_thread, int shared_bytes_per_block);

}  // namespace repro::sim
