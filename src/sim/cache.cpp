#include "sim/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace repro::sim {

SetAssocCache::SetAssocCache(std::uint64_t size_bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  if (line_bytes <= 0 || ways <= 0) {
    throw std::invalid_argument("cache geometry must be positive");
  }
  const std::uint64_t lines = size_bytes / static_cast<std::uint64_t>(line_bytes);
  if (lines < static_cast<std::uint64_t>(ways)) {
    throw std::invalid_argument("cache smaller than one set");
  }
  num_sets_ = static_cast<int>(lines / static_cast<std::uint64_t>(ways));
  lines_.assign(static_cast<std::size_t>(num_sets_) * ways_, Line{});
}

bool SetAssocCache::access(std::uint64_t address) {
  const std::uint64_t line_addr = address / static_cast<std::uint64_t>(line_bytes_);
  const auto set = static_cast<int>(line_addr % static_cast<std::uint64_t>(num_sets_));
  const std::uint64_t tag = line_addr / static_cast<std::uint64_t>(num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  ++stamp_;

  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = stamp_;
      ++hits_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  ++misses_;
  return false;
}

void SetAssocCache::reset() {
  for (Line& line : lines_) line = Line{};
  stamp_ = hits_ = misses_ = 0;
}

}  // namespace repro::sim
