// Memory-coalescing analysis (paper §III).
//
// If the 32 threads of a warp access words within one aligned 128-byte
// segment, the hardware merges them into a single transaction; accesses
// spanning k segments issue k serial transactions. Workloads feed sampled
// per-warp address streams through this analyzer to obtain their
// transactions-per-access factor instead of guessing it.
#pragma once

#include <cstdint>
#include <span>

namespace repro::sim {

struct CoalesceStats {
  std::uint64_t warp_accesses = 0;
  std::uint64_t transactions = 0;

  double transactions_per_access() const noexcept {
    return warp_accesses == 0
               ? 1.0
               : static_cast<double>(transactions) / static_cast<double>(warp_accesses);
  }
};

class CoalescingAnalyzer {
 public:
  explicit CoalescingAnalyzer(int segment_bytes = 128) noexcept
      : segment_bytes_(segment_bytes) {}

  /// Analyzes one warp-wide access: `addresses` holds the byte address each
  /// active lane touches (inactive lanes omitted; an empty span is a no-op).
  /// Returns the number of 128-byte transactions generated.
  int warp_access(std::span<const std::uint64_t> addresses);

  /// Convenience: processes a flat per-thread address stream in warp-sized
  /// chunks (final partial warp included).
  void access_stream(std::span<const std::uint64_t> addresses);

  const CoalesceStats& stats() const noexcept { return stats_; }
  void reset() noexcept { stats_ = {}; }

 private:
  int segment_bytes_;
  CoalesceStats stats_;
};

}  // namespace repro::sim
