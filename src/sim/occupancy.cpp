#include "sim/occupancy.hpp"

#include <algorithm>

namespace repro::sim {

Occupancy occupancy(const KeplerDevice& device, int threads_per_block,
                    int regs_per_thread, int shared_bytes_per_block) {
  threads_per_block = std::clamp(threads_per_block, 1, device.max_threads_per_block);
  regs_per_thread = std::max(regs_per_thread, 1);
  const int warps_per_block =
      (threads_per_block + device.warp_size - 1) / device.warp_size;

  Occupancy occ;
  int limit = device.max_blocks_per_sm;
  occ.limiter = Occupancy::Limiter::kBlocks;

  const int by_warps = device.max_warps_per_sm / warps_per_block;
  if (by_warps < limit) {
    limit = by_warps;
    occ.limiter = Occupancy::Limiter::kWarps;
  }

  const auto regs_per_block =
      static_cast<std::uint32_t>(regs_per_thread) * threads_per_block;
  const int by_regs = static_cast<int>(device.registers_per_sm / regs_per_block);
  if (by_regs < limit) {
    limit = by_regs;
    occ.limiter = Occupancy::Limiter::kRegisters;
  }

  if (shared_bytes_per_block > 0) {
    const int by_shared = static_cast<int>(
        device.shared_bytes_per_sm / static_cast<std::uint32_t>(shared_bytes_per_block));
    if (by_shared < limit) {
      limit = by_shared;
      occ.limiter = Occupancy::Limiter::kSharedMemory;
    }
  }

  occ.blocks_per_sm = std::max(limit, 1);
  occ.warps_per_sm = std::min(occ.blocks_per_sm * warps_per_block,
                              device.max_warps_per_sm);
  occ.fraction = static_cast<double>(occ.warps_per_sm) / device.max_warps_per_sm;
  if (limit >= device.max_blocks_per_sm) occ.limiter = Occupancy::Limiter::kNone;
  return occ;
}

}  // namespace repro::sim
