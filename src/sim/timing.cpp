#include "sim/timing.hpp"

#include <algorithm>
#include <cmath>

namespace repro::sim {

Activity& Activity::operator+=(const Activity& other) noexcept {
  warp_instructions += other.warp_instructions;
  fp32_ops += other.fp32_ops;
  fp64_ops += other.fp64_ops;
  int_ops += other.int_ops;
  sfu_ops += other.sfu_ops;
  shared_accesses += other.shared_accesses;
  l2_transactions += other.l2_transactions;
  dram_transactions += other.dram_transactions;
  dram_bus_bytes += other.dram_bus_bytes;
  atomic_ops += other.atomic_ops;
  return *this;
}

KernelResult time_kernel(const KeplerDevice& device, const GpuConfig& config,
                         const workloads::KernelLaunch& launch) {
  const workloads::InstructionMix& mix = launch.mix;
  const DramModel dram{device, config};

  KernelResult r;
  r.occ = occupancy(device, launch.threads_per_block, launch.regs_per_thread,
                    launch.shared_bytes_per_block);

  const double threads = std::max(launch.total_threads(), 1.0);
  const double warps = threads / device.warp_size;
  const double d = std::max(mix.divergence, 1.0);
  const double alf = std::clamp(mix.active_lane_fraction, 0.01, 1.0);

  // ---- Event counts (power inputs). Lane-ops are the operations actually
  // executed; issue slots additionally pay for divergence replays.
  Activity& act = r.activity;
  act.fp32_ops = mix.fp32 * threads * alf;
  act.fp64_ops = mix.fp64 * threads * alf;
  act.int_ops = mix.int_alu * threads * alf;
  act.sfu_ops = mix.sfu * threads * alf;
  act.atomic_ops = mix.atomics * threads * alf;
  act.shared_accesses = mix.shared_accesses * warps * mix.shared_conflict_factor * d;

  const double load_txn = mix.global_loads * warps * mix.load_transactions_per_access;
  const double store_txn =
      mix.global_stores * warps * mix.store_transactions_per_access;
  const double atomic_txn = mix.atomics * warps * std::max(mix.atomic_contention, 1.0);
  const double global_txn = load_txn + store_txn;
  act.l2_transactions = global_txn + atomic_txn;
  act.dram_transactions = global_txn * (1.0 - std::clamp(mix.l2_hit_rate, 0.0, 1.0));
  act.dram_bus_bytes = act.dram_transactions * dram.bus_bytes_per_transaction();

  // Issue slots: FMA retires 2 FLOPs per slot, so FP slot counts divide by
  // (1 + fma_fraction).
  const double fma_issue = 1.0 + std::clamp(mix.fma_fraction, 0.0, 1.0);
  const double arith_issues =
      ((mix.fp32 + mix.fp64) / fma_issue + mix.int_alu + mix.sfu) * warps * d;
  const double ldst_issues = global_txn + act.shared_accesses + atomic_txn;
  const double sync_issues = mix.syncs * warps;
  act.warp_instructions = arith_issues + ldst_issues + sync_issues;

  // ---- Compute side: busiest pipeline per SM, in core cycles. FMA
  // retires 2 FLOPs per issue slot.
  const double fma = 1.0 + std::clamp(mix.fma_fraction, 0.0, 1.0);
  const double per_sm = 1.0 / device.num_sms;
  const double w = device.warp_size;
  const double c_fp32 =
      mix.fp32 / fma * warps * d * per_sm * w / device.fp32_lanes_per_sm;
  const double c_fp64 =
      mix.fp64 / fma * warps * d * per_sm * w / device.fp64_lanes_per_sm;
  const double c_int = mix.int_alu * warps * d * per_sm * w / device.int_lanes_per_sm;
  const double c_sfu = mix.sfu * warps * d * per_sm * w / device.sfu_per_sm;
  const double c_ldst = ldst_issues * per_sm;  // one warp transaction / cycle
  const double c_issue = act.warp_instructions * per_sm / device.issue_width;
  double compute_cycles =
      std::max({c_fp32, c_fp64, c_int, c_sfu, c_ldst, c_issue});

  // A grid smaller than the machine leaves SMs partially filled: the
  // resident warps per SM are bounded by what the launch actually provides.
  const double grid_warps_per_sm =
      std::ceil(warps / static_cast<double>(device.num_sms));
  const double resident_warps =
      std::min(static_cast<double>(r.occ.warps_per_sm),
               std::max(grid_warps_per_sm, 1.0));

  // Too few resident warps leave pipeline bubbles (can't hide ALU latency).
  const double hide =
      std::min(1.0, resident_warps / device.warps_for_full_throughput);
  compute_cycles /= std::max(hide, 0.05);

  const double core_hz = config.core_mhz * 1e6;
  r.compute_time_s = compute_cycles / core_hz;

  // ---- Memory side: DRAM bandwidth, DRAM latency (Little's law), L2.
  const double t_bw = act.dram_bus_bytes / dram.effective_bandwidth();
  const double concurrency =
      std::max(1.0, resident_warps * device.num_sms * std::max(mix.mlp, 0.25));
  const double t_lat = act.dram_transactions * dram.latency_s() / concurrency;
  // GK110 L2: ~512 B/core-cycle aggregate.
  const double l2_bw = 512.0 * core_hz;
  const double t_l2 =
      act.l2_transactions * device.dram_segment_bytes / l2_bw;
  r.memory_time_s = std::max({t_bw, t_lat, t_l2});

  // ---- Blend. High occupancy overlaps compute and memory well; low
  // occupancy serializes part of them.
  const double overlap = std::clamp(r.occ.fraction * 1.6, 0.35, 0.92);
  double busy = std::max(r.compute_time_s, r.memory_time_s) +
                (1.0 - overlap) * std::min(r.compute_time_s, r.memory_time_s);

  // ---- Load imbalance, amortized over waves: a skewed block distribution
  // only leaves SMs idle during the final wave.
  const double waves =
      std::max(1.0, launch.blocks / (static_cast<double>(r.occ.blocks_per_sm) *
                                     device.num_sms));
  const double imb = std::max(launch.imbalance, 1.0);
  busy *= 1.0 + (imb - 1.0) / waves;

  r.time_s = busy + device.kernel_launch_overhead_s;
  return r;
}

}  // namespace repro::sim
