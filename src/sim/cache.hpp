// Set-associative LRU cache model.
//
// Workloads with non-trivial reuse patterns run sampled address streams
// through an L2-sized instance of this model to derive their l2_hit_rate
// instead of asserting one.
#pragma once

#include <cstdint>
#include <vector>

namespace repro::sim {

class SetAssocCache {
 public:
  /// size_bytes and line_bytes must be powers-of-two multiples such that
  /// size_bytes / (line_bytes * ways) >= 1.
  SetAssocCache(std::uint64_t size_bytes, int line_bytes, int ways);

  /// Accesses a byte address; returns true on hit. Misses fill the line
  /// (allocate-on-miss for both reads and writes, like the K20 L2).
  bool access(std::uint64_t address);

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  double hit_rate() const noexcept {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void reset();

  int num_sets() const noexcept { return num_sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  int line_bytes_;
  int ways_;
  int num_sets_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Line> lines_;  // num_sets_ x ways_, row-major
};

}  // namespace repro::sim
