// Architectural constants of the simulated GPU.
//
// Values follow the Tesla K20c (GK110, 13 SMX) described in paper §III.
#pragma once

#include <cstdint>

namespace repro::sim {

struct KeplerDevice {
  // Compute resources (paper §III: 13 SMs x 192 PEs = 2496).
  int num_sms = 13;
  int fp32_lanes_per_sm = 192;
  int fp64_lanes_per_sm = 64;
  int sfu_per_sm = 32;
  int int_lanes_per_sm = 160;   // GK110 integer throughput < fp32
  int ldst_units_per_sm = 32;   // one warp-wide access per cycle
  int warp_size = 32;
  int schedulers_per_sm = 4;    // dual-issue quad scheduler
  double issue_width = 6.0;     // sustained warp instructions / cycle / SM

  // Occupancy limits.
  int max_warps_per_sm = 64;
  int max_blocks_per_sm = 16;
  int max_threads_per_block = 1024;
  std::uint32_t registers_per_sm = 65536;
  std::uint32_t shared_bytes_per_sm = 48 * 1024;

  // Memory hierarchy.
  std::uint32_t l2_bytes = 1280 * 1024;  // 1.25 MB on K20
  int l2_line_bytes = 128;
  int l2_ways = 16;
  int dram_segment_bytes = 128;          // coalescing granularity (§III)
  int dram_bus_bytes_per_clock = 80;     // 320-bit GDDR5, DDR: 40 B x 2

  // Latency model: DRAM round-trip in nanoseconds as a function of the
  // memory clock (the controller/array runs slower at low clocks).
  double dram_latency_base_ns = 350.0;
  double dram_latency_clock_ns = 120.0;  // scaled by (2600 / mem_mhz)

  // Per-launch driver/runtime overhead.
  double kernel_launch_overhead_s = 6.0e-6;

  // Pipeline-latency hiding: resident warps needed per SM for full
  // arithmetic throughput.
  double warps_for_full_throughput = 24.0;

  double peak_fp32_lane_ops_per_s(double core_mhz) const noexcept {
    return static_cast<double>(num_sms) * fp32_lanes_per_sm * core_mhz * 1e6;
  }

  double dram_latency_ns(double mem_mhz) const noexcept {
    return dram_latency_base_ns + dram_latency_clock_ns * (2600.0 / mem_mhz);
  }

  /// Peak DRAM bandwidth in bytes/s at a given memory clock. At the
  /// default 2600 MHz this is 208 GB/s, matching the K20c.
  double peak_dram_bw(double mem_mhz) const noexcept {
    return mem_mhz * 1e6 * dram_bus_bytes_per_clock / 1.0;
  }
};

/// The device every experiment in the study runs on.
inline const KeplerDevice& k20c() {
  static const KeplerDevice device{};
  return device;
}

/// Tesla K40 (GK110B, 15 SMX, 288 GB/s). The paper (§IV.B) repeated
/// initial experiments on K20m/K20x/K40 and found the same results after
/// scaling the absolute numbers; tests verify that relative effects are
/// device-invariant here too.
inline const KeplerDevice& k40() {
  static const KeplerDevice device = [] {
    KeplerDevice d;
    d.num_sms = 15;
    d.l2_bytes = 1536 * 1024;
    // 384-bit GDDR5: 48 B x 2 per memory clock (3.0 GHz -> 288 GB/s).
    d.dram_bus_bytes_per_clock = 96;
    return d;
  }();
  return device;
}

}  // namespace repro::sim
