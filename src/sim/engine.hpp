// Launch-trace executor: times every kernel of a trace and produces the
// phase list (durations + activities + host gaps) that the power model and
// sensor pipeline consume.
#pragma once

#include <string>
#include <vector>

#include "sim/timing.hpp"
#include "workloads/kernel.hpp"

namespace repro::sim {

/// One GPU-busy phase (a kernel execution) of a program run.
struct Phase {
  std::string kernel_name;
  double host_gap_before_s = 0.0;  // GPU idle (driver-active) before this phase
  double duration_s = 0.0;
  Activity activity;
  bool memory_bound = false;
};

struct TraceResult {
  std::vector<Phase> phases;
  double active_time_s = 0.0;  // sum of kernel durations (ground truth)
  double total_span_s = 0.0;   // incl. host gaps
  Activity total_activity;
};

/// Runs a whole launch trace under `config`. Consecutive launches of the
/// same kernel with no host gap are merged into one phase to keep sensor
/// waveforms compact (the GPU sees back-to-back launches the same way).
TraceResult run_trace(const KeplerDevice& device, const GpuConfig& config,
                      const workloads::LaunchTrace& trace);

}  // namespace repro::sim
