#include "sim/coalesce.hpp"

#include <algorithm>
#include <vector>

namespace repro::sim {

int CoalescingAnalyzer::warp_access(std::span<const std::uint64_t> addresses) {
  if (addresses.empty()) return 0;
  // Distinct aligned segments touched by the warp. 32 entries max, so a
  // small sorted vector beats a hash set.
  std::vector<std::uint64_t> segments;
  segments.reserve(addresses.size());
  for (const std::uint64_t addr : addresses) {
    segments.push_back(addr / static_cast<std::uint64_t>(segment_bytes_));
  }
  std::sort(segments.begin(), segments.end());
  segments.erase(std::unique(segments.begin(), segments.end()), segments.end());
  ++stats_.warp_accesses;
  stats_.transactions += segments.size();
  return static_cast<int>(segments.size());
}

void CoalescingAnalyzer::access_stream(std::span<const std::uint64_t> addresses) {
  constexpr std::size_t kWarp = 32;
  for (std::size_t base = 0; base < addresses.size(); base += kWarp) {
    const std::size_t count = std::min(kWarp, addresses.size() - base);
    warp_access(addresses.subspan(base, count));
  }
}

}  // namespace repro::sim
