#include "fault/fault.hpp"

#include <atomic>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace repro::fault {

namespace {

// FNV-1a over the key bytes. std::hash would work within one binary, but
// the schedule is a printed, replayable contract — it must not depend on
// the standard library's hash choice.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// All entropy of one decision: a mix of the seed, the site, the key hash
// and the occurrence index. Bits 0-52 (via hash_unit-style scaling) gate
// the firing probability; an independent remix selects kind and magnitude.
std::uint64_t decision_bits(std::uint64_t seed, Site site,
                            std::string_view key,
                            std::uint64_t occurrence) noexcept {
  std::uint64_t h = util::mix64(seed ^ 0x8c57f0a1d3b64e29ULL);
  h = util::mix64(h + static_cast<std::uint64_t>(site) * 0x9e3779b97f4a7c15ULL);
  h = util::mix64(h ^ fnv1a(key));
  return util::mix64(h + occurrence);
}

double unit(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Kind select_kind(Site site, std::uint64_t bits) noexcept {
  switch (site) {
    case Site::kScheduler:
      return bits % 2 == 0 ? Kind::kJobAbort : Kind::kJobDelay;
    case Site::kSensor:
      switch (bits % 3) {
        case 0: return Kind::kSampleDrop;
        case 1: return Kind::kSampleDuplicate;
        default: return Kind::kStuckIdleRate;
      }
    case Site::kWire:
      return bits % 2 == 0 ? Kind::kWireTruncate : Kind::kWireCorrupt;
    case Site::kCache:
      return Kind::kCacheEvict;
    case Site::kWorker:
      return Kind::kWorkerKill;
  }
  return Kind::kNone;
}

std::atomic<const FaultPlan*> g_active{nullptr};

thread_local std::string_view t_context_key;

void bump_obs(Site site) {
  if (!obs::enabled()) return;
  obs::Registry::instance()
      .counter(std::string("fault.injected.") + std::string(to_string(site)))
      .add();
}

}  // namespace

std::string_view to_string(Site site) {
  switch (site) {
    case Site::kScheduler: return "scheduler";
    case Site::kSensor: return "sensor";
    case Site::kWire: return "wire";
    case Site::kCache: return "cache";
    case Site::kWorker: return "worker";
  }
  return "unknown";
}

std::string_view to_string(Kind kind) {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kJobAbort: return "job_abort";
    case Kind::kJobDelay: return "job_delay";
    case Kind::kSampleDrop: return "sample_drop";
    case Kind::kSampleDuplicate: return "sample_duplicate";
    case Kind::kStuckIdleRate: return "stuck_idle_rate";
    case Kind::kWireTruncate: return "wire_truncate";
    case Kind::kWireCorrupt: return "wire_corrupt";
    case Kind::kCacheEvict: return "cache_evict";
    case Kind::kWorkerKill: return "worker_kill";
  }
  return "unknown";
}

double PlanOptions::rate(Site site) const noexcept {
  switch (site) {
    case Site::kScheduler: return scheduler_rate;
    case Site::kSensor: return sensor_rate;
    case Site::kWire: return wire_rate;
    case Site::kCache: return cache_rate;
    case Site::kWorker: return worker_rate;
  }
  return 0.0;
}

FaultPlan::FaultPlan(PlanOptions options) : options_(options) {}

Fault FaultPlan::decide(Site site, std::string_view key,
                        std::uint64_t occurrence) const {
  const std::uint64_t bits =
      decision_bits(options_.seed, site, key, occurrence);
  if (unit(bits) >= options_.rate(site)) return Fault{};
  const std::uint64_t remix = util::mix64(bits ^ 0xa24baed4963ee407ULL);
  Fault fault;
  fault.kind = select_kind(site, remix);
  fault.magnitude = util::mix64(remix + 1);
  return fault;
}

Fault FaultPlan::draw(Site site, std::string_view key) const {
  Shard& shard =
      state_[static_cast<std::size_t>(site)][fnv1a(key) % kShardCount];
  std::uint64_t occurrence = 0;
  {
    std::lock_guard lock(shard.mutex);
    occurrence = shard.drawn[std::string(key)]++;
  }
  return decide(site, key, occurrence);
}

void FaultPlan::record_applied(Site site, std::string_view key) const {
  Shard& shard =
      state_[static_cast<std::size_t>(site)][fnv1a(key) % kShardCount];
  {
    std::lock_guard lock(shard.mutex);
    ++shard.applied[std::string(key)];
  }
  applied_totals_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  bump_obs(site);
}

std::uint64_t FaultPlan::occurrences(Site site, std::string_view key) const {
  Shard& shard =
      state_[static_cast<std::size_t>(site)][fnv1a(key) % kShardCount];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.drawn.find(std::string(key));
  return it == shard.drawn.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::applied(Site site, std::string_view key) const {
  Shard& shard =
      state_[static_cast<std::size_t>(site)][fnv1a(key) % kShardCount];
  std::lock_guard lock(shard.mutex);
  const auto it = shard.applied.find(std::string(key));
  return it == shard.applied.end() ? 0 : it->second;
}

std::uint64_t FaultPlan::applied_total(Site site) const {
  return applied_totals_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultPlan::applied_total() const {
  std::uint64_t total = 0;
  for (const auto& counter : applied_totals_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultPlan::schedule_digest(
    const std::vector<std::string>& keys,
    std::uint64_t occurrences_per_key) const {
  std::string digest;
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    const Site site = static_cast<Site>(s);
    for (const std::string& key : keys) {
      for (std::uint64_t occ = 0; occ < occurrences_per_key; ++occ) {
        const Fault fault = decide(site, key, occ);
        if (!fault) continue;
        digest += std::string(to_string(site));
        digest += ' ';
        digest += key;
        digest += '#';
        digest += std::to_string(occ);
        digest += ' ';
        digest += std::string(to_string(fault.kind));
        digest += ':';
        digest += std::to_string(fault.magnitude);
        digest += '\n';
      }
    }
  }
  return digest;
}

const FaultPlan* active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

ScopedPlan::ScopedPlan(const FaultPlan* plan) noexcept
    : previous_(g_active.exchange(plan, std::memory_order_acq_rel)) {}

ScopedPlan::~ScopedPlan() {
  g_active.store(previous_, std::memory_order_release);
}

KeyScope::KeyScope(std::string_view key) noexcept
    : previous_(t_context_key) {
  t_context_key = key;
}

KeyScope::~KeyScope() { t_context_key = previous_; }

std::string_view context_key() noexcept { return t_context_key; }

std::string apply_wire(const FaultPlan& plan, std::string_view key,
                       Fault fault, std::string_view line) {
  if (line.empty()) return std::string(line);
  std::string mutated(line);
  switch (fault.kind) {
    case Kind::kWireTruncate:
      mutated.resize(fault.magnitude % line.size());
      break;
    case Kind::kWireCorrupt: {
      const std::size_t pos = fault.magnitude % line.size();
      // XOR with a nonzero byte guarantees the line actually changes.
      const unsigned char flip =
          static_cast<unsigned char>(1 + (fault.magnitude >> 8) % 255);
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^ flip);
      break;
    }
    default:
      return mutated;
  }
  if (mutated != line) plan.record_applied(Site::kWire, key);
  return mutated;
}

std::string filter_wire_line(std::string_view key, std::string_view line) {
  const FaultPlan* plan = active();
  if (plan == nullptr) return std::string(line);
  return apply_wire(*plan, key, plan->draw(Site::kWire, key), line);
}

}  // namespace repro::fault
