// Deterministic fault injection (DESIGN.md §12).
//
// A FaultPlan is a pure function from (site, key, occurrence-index) to a
// fault decision, derived from a single 64-bit seed: the same seed always
// produces the same fault schedule, so any chaos run is replayable from
// the seed printed in its failure report. Sites pull decisions with
// `draw(site, key)` — the plan keeps a per-(site, key) occurrence counter,
// so a site that queries in a deterministic per-key order (every site in
// this repo does) sees a deterministic schedule regardless of how keys
// interleave across threads.
//
// Injection sites threaded through the pipeline:
//   kScheduler  core::Scheduler::run     job abort / artificial delay
//   kSensor     sensor::Sensor::record   dropped / duplicated samples,
//                                        stuck 1 Hz mode (the nvidia-smi
//                                        "part-time power measurement"
//                                        failure, Yang et al.)
//   kWire       serve wire / repro-serve line truncation, byte corruption
//   kCache      serve::ResultCache       eviction storms
//   kWorker     shard::Router            worker-process kills (routed
//                                        request's owner dies mid-flight)
//
// Activation is explicit and process-global: install a plan with
// ScopedPlan (chaos harness, repro-serve --fault-seed). When no plan is
// installed every hook is one relaxed atomic load — the layer is compiled
// in but free. Sites report *applied* faults back via record_applied, so
// "this experiment was degraded by injection" is an exact statement, not
// a probability: the serving layer uses the per-key applied counts to
// decide retry/degradation status truthfully.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace repro::fault {

/// Where a fault can be injected.
enum class Site : int {
  kScheduler = 0,  // per job attempt
  kSensor = 1,     // per recording (one repetition of one experiment)
  kWire = 2,       // per wire line
  kCache = 3,      // per result-cache insert
  kWorker = 4,     // per request routed to a shard worker (PR 8)
};
inline constexpr std::size_t kSiteCount = 5;

std::string_view to_string(Site site);

/// What happens when a fault fires. Kinds are site-specific.
enum class Kind : int {
  kNone = 0,
  // kScheduler
  kJobAbort,         // the job is not executed this attempt (retryable)
  kJobDelay,         // the job starts late by `magnitude % 8 + 1` ms
  // kSensor
  kSampleDrop,       // the sample at index `magnitude % 128` is not emitted
  kSampleDuplicate,  // the sample at index `magnitude % 128` is emitted twice
  kStuckIdleRate,    // from index `magnitude % 128` on, the sampler never
                     // leaves 1 Hz mode (late/dropped-sample sensor failure)
  // kWire
  kWireTruncate,     // the line is cut to `magnitude % length` bytes
  kWireCorrupt,      // one byte at `magnitude % length` is flipped
  // kCache
  kCacheEvict,       // an eviction storm: up to `magnitude % 8 + 1` LRU-tail
                     // entries of the key's shard are evicted
  // kWorker
  kWorkerKill,       // the worker owning the routed key is killed before the
                     // request completes (router reroutes on the shrunk ring)
};

std::string_view to_string(Kind kind);

/// One fault decision. `magnitude` is raw deterministic entropy the site
/// interprets (positions, delays, storm sizes — see Kind comments).
struct Fault {
  Kind kind = Kind::kNone;
  std::uint64_t magnitude = 0;
  explicit operator bool() const noexcept { return kind != Kind::kNone; }
};

/// Per-site firing rates in [0, 1], evaluated once per occurrence.
struct PlanOptions {
  std::uint64_t seed = 1;
  double scheduler_rate = 0.10;
  double sensor_rate = 0.10;
  double wire_rate = 0.25;
  double cache_rate = 0.10;
  // Worker kills are a shard-tier chaos mode: 0 by default so single-
  // process plans (and their pinned schedule digests) are unchanged.
  double worker_rate = 0.0;

  double rate(Site site) const noexcept;
};

class FaultPlan {
 public:
  explicit FaultPlan(PlanOptions options);
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// The schedule itself: a pure function of (seed, site, key, occurrence).
  /// Two plans with equal options agree on every decision, byte for byte.
  Fault decide(Site site, std::string_view key,
               std::uint64_t occurrence) const;

  /// Draws the next decision for this (site, key): advances the occurrence
  /// counter and returns decide(site, key, previous-count). Thread-safe;
  /// concurrent draws for distinct keys never interact.
  Fault draw(Site site, std::string_view key) const;

  /// Called by a site when a drawn fault actually took effect (an abort
  /// honored, a sample really dropped, a line really mutated). Applied
  /// counts — not drawn counts — are the truth source for degradation
  /// statuses.
  void record_applied(Site site, std::string_view key) const;

  /// Occurrences drawn / faults applied for one (site, key).
  std::uint64_t occurrences(Site site, std::string_view key) const;
  std::uint64_t applied(Site site, std::string_view key) const;
  /// Process totals per site and overall.
  std::uint64_t applied_total(Site site) const;
  std::uint64_t applied_total() const;

  const PlanOptions& options() const noexcept { return options_; }

  /// Canonical text rendering of the schedule over a (sites x keys x
  /// occurrences) grid — the replayability witness: equal seeds produce
  /// equal digests, and a chaos failure can be reproduced by re-deriving
  /// the digest from the printed seed.
  std::string schedule_digest(const std::vector<std::string>& keys,
                              std::uint64_t occurrences_per_key) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::uint64_t> drawn;
    std::unordered_map<std::string, std::uint64_t> applied;
  };
  static constexpr std::size_t kShardCount = 16;

  PlanOptions options_;
  mutable std::array<std::array<Shard, kShardCount>, kSiteCount> state_;
  mutable std::array<std::atomic<std::uint64_t>, kSiteCount> applied_totals_{};
};

/// The installed plan, or nullptr (the default: injection disabled). One
/// relaxed atomic load — safe and negligible on every hot path.
const FaultPlan* active() noexcept;

/// Installs `plan` as the process-wide active plan for this scope.
/// Installation is exclusive (no nesting): constructing a second
/// ScopedPlan while one is live replaces the active plan and restores it
/// on destruction, but chaos runs should hold exactly one.
class ScopedPlan {
 public:
  explicit ScopedPlan(const FaultPlan* plan) noexcept;
  ~ScopedPlan();
  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

 private:
  const FaultPlan* previous_;
};

/// Thread-local experiment-key context: Study::compute_measurement scopes
/// the key it is computing so deep sites (the sensor) can attribute their
/// draws to the right experiment without threading the key through every
/// signature. Empty outside a measurement.
class KeyScope {
 public:
  explicit KeyScope(std::string_view key) noexcept;
  ~KeyScope();
  KeyScope(const KeyScope&) = delete;
  KeyScope& operator=(const KeyScope&) = delete;

 private:
  std::string_view previous_;
};

std::string_view context_key() noexcept;

/// Applies a drawn wire fault to one line: truncation or a single-byte
/// flip at deterministic positions. Returns the line unchanged for
/// kNone/non-wire kinds; records the fault as applied (against `key`)
/// whenever the returned bytes differ from the input.
std::string apply_wire(const FaultPlan& plan, std::string_view key,
                       Fault fault, std::string_view line);

/// Draw-and-apply convenience used by repro-serve: no-op without a plan.
std::string filter_wire_line(std::string_view key, std::string_view line);

}  // namespace repro::fault
