// Re-implementation of the K20Power measurement tool (Burtscher, Zecena &
// Zong, GPGPU-7 2014) used by the paper (§IV.B-C, Fig. 1).
//
// Given the sensor's sample stream, the tool:
//  1. estimates the idle floor,
//  2. picks a dynamic activity threshold for this execution (the paper:
//     "dynamically adjusted for each execution ... lower frequency settings
//     require a lower threshold"),
//  3. defines the ACTIVE RUNTIME as the span during which the reading stays
//     above the threshold,
//  4. compensates the sensor's capacitor-like lag (p = r + tau*dr/dt) and
//     integrates the compensated power over the active window for energy,
//  5. rejects the run if too few active samples were captured (the paper's
//     exclusion rule for the 324 MHz configuration and for very fast
//     codes such as L-BFS wlc/wlw).
#pragma once

#include <span>

#include "sensor/sampler.hpp"

namespace repro::k20power {

struct AnalyzeOptions {
  double lag_tau_s = 0.7;          // must match the sensor's time constant
  double threshold_fraction = 0.25;  // idle + fraction * (peak - idle)
  double min_threshold_above_idle_w = 5.5;
  /// Floor for the threshold: the driver's tail power plus a margin, so
  /// the tail after the last kernel is never counted as active runtime.
  /// The caller knows the configuration and passes the expected tail level
  /// (the paper: the threshold is "dynamically adjusted for each
  /// execution ... lower frequency settings require a lower threshold").
  double min_threshold_w = 0.0;
  int min_active_samples = 12;     // below this, the run is unusable
};

/// Convenience: options with the tail guard set for a given expected tail
/// power level.
inline AnalyzeOptions options_for_tail(double tail_power_w) {
  AnalyzeOptions opt;
  opt.min_threshold_w = tail_power_w + 2.5;
  return opt;
}

struct Measurement {
  bool usable = false;
  double active_time_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double idle_w = 0.0;
  double threshold_w = 0.0;
  double peak_w = 0.0;
  int active_samples = 0;
};

/// Analyzes one recorded run.
Measurement analyze(std::span<const sensor::Sample> samples,
                    const AnalyzeOptions& options = {});

}  // namespace repro::k20power
