#include "k20power/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/trace.hpp"

namespace repro::k20power {

Measurement analyze(std::span<const sensor::Sample> samples,
                    const AnalyzeOptions& options) {
  obs::Span span("k20power-analysis");
  span.arg("samples", static_cast<std::uint64_t>(samples.size()));
  Measurement m;
  if (samples.size() < 3) return m;

  // Idle floor: the sensor records a short idle stretch before the run and
  // after the driver tail decays. Long runs leave only a handful of idle
  // samples, so estimate from the lowest few readings (robust against a
  // single noise outlier) rather than a percentile of the whole stream.
  //
  // Selection runs over a bounded candidate buffer instead of sorting a
  // full copy of the stream: whenever the buffer fills, nth_element keeps
  // the lowest low_n seen so far and the rest is discarded. The final
  // ascending sort of those low_n values restores the reference summation
  // order, so idle_w is bit-identical to the old full-sort path (ties are
  // equal doubles; which duplicate survives cannot change the sum).
  const std::size_t low_n = std::min<std::size_t>(5, samples.size());
  constexpr std::size_t kLowCap = 64;
  std::vector<double> low;
  low.reserve(kLowCap);
  double peak = samples.front().w;
  for (const sensor::Sample& s : samples) {
    peak = std::max(peak, s.w);
    low.push_back(s.w);
    if (low.size() == kLowCap) {
      std::nth_element(low.begin(),
                       low.begin() + static_cast<std::ptrdiff_t>(low_n),
                       low.end());
      low.resize(low_n);
    }
  }
  if (low.size() > low_n) {
    std::nth_element(low.begin(),
                     low.begin() + static_cast<std::ptrdiff_t>(low_n),
                     low.end());
    low.resize(low_n);
  }
  std::sort(low.begin(), low.end());
  double low_sum = 0.0;
  for (const double w : low) low_sum += w;
  m.idle_w = low_sum / static_cast<double>(low_n);
  m.peak_w = peak;

  m.threshold_w = std::max(
      {m.idle_w + options.threshold_fraction * (m.peak_w - m.idle_w),
       m.idle_w + options.min_threshold_above_idle_w, options.min_threshold_w});

  // Active window: first to last sample above the threshold.
  std::size_t first = samples.size(), last = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].w > m.threshold_w) {
      first = std::min(first, i);
      last = std::max(last, i);
    }
  }
  if (first >= samples.size() || last <= first) return m;

  for (std::size_t i = first; i <= last; ++i) {
    if (samples[i].w > m.threshold_w) ++m.active_samples;
  }
  if (m.active_samples < options.min_active_samples) return m;

  // Require the sensor to have been in its active (10 Hz) mode for the
  // bulk of the window: a 1 Hz stream cannot resolve the power profile
  // (the paper's reason for dropping most 324 MHz runs).
  if (last > first) {
    std::vector<double> gaps;
    gaps.reserve(last - first);
    for (std::size_t i = first; i < last; ++i) {
      gaps.push_back(samples[i + 1].t - samples[i].t);
    }
    std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
    if (gaps[gaps.size() / 2] > 0.15) return m;
  }

  // Lag compensation: the sensor reading r follows the true power p with
  // dr/dt = (p - r)/tau, so p = r + tau * dr/dt. Central differences on the
  // (non-uniform) sample grid.
  const auto compensated = [&](std::size_t i) {
    const std::size_t lo = i > 0 ? i - 1 : i;
    const std::size_t hi = i + 1 < samples.size() ? i + 1 : i;
    const double dt = samples[hi].t - samples[lo].t;
    const double drdt = dt > 0.0 ? (samples[hi].w - samples[lo].w) / dt : 0.0;
    return samples[i].w + options.lag_tau_s * drdt;
  };

  // Extend half a sample period on each side: the kernel started before the
  // first above-threshold sample was taken.
  const double lead = first > 0 ? 0.5 * (samples[first].t - samples[first - 1].t)
                                : 0.0;
  const double tail = last + 1 < samples.size()
                          ? 0.5 * (samples[last + 1].t - samples[last].t)
                          : 0.0;
  m.active_time_s = (samples[last].t - samples[first].t) + lead + tail;

  // Trapezoidal energy over the active window using compensated power.
  double energy = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    const double dt = samples[i + 1].t - samples[i].t;
    energy += 0.5 * (compensated(i) + compensated(i + 1)) * dt;
  }
  // Edge half-periods at the window's boundary power levels.
  energy += compensated(first) * lead + compensated(last) * tail;

  m.energy_j = energy;
  m.avg_power_w = m.active_time_s > 0.0 ? m.energy_j / m.active_time_s : 0.0;
  m.usable = true;
  return m;
}

}  // namespace repro::k20power
