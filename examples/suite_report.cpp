// Suite report: full characterization of one benchmark suite across all
// four GPU configurations - the per-suite view behind the paper's figures.
//
// Usage: suite_report [suite-name]   (default: LonestarGPU)
#include <cstdio>
#include <cstring>
#include <string>

#include "core/study.hpp"
#include "sim/gpuconfig.hpp"
#include "util/stats.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  suites::register_all_workloads();
  const std::string suite = argc > 1 ? argv[1] : "LonestarGPU";
  const auto programs = workloads::Registry::instance().by_suite(suite);
  if (programs.empty()) {
    std::fprintf(stderr,
                 "unknown suite '%s'; one of: CUDA SDK, LonestarGPU, Parboil, "
                 "Rodinia, SHOC\n",
                 suite.c_str());
    return 1;
  }

  core::Study study;
  std::printf("%s characterization (median of 3 runs per experiment)\n\n", suite.c_str());
  for (const workloads::Workload* w : programs) {
    const char* variant_note = w->variant().empty() ? "" : "  [variant]";
    std::printf("%s%s - %d global kernel(s), %s/%s\n",
                std::string(w->name()).c_str(), variant_note,
                w->num_global_kernels(),
                w->boundedness() == workloads::Boundedness::kCompute ? "compute"
                : w->boundedness() == workloads::Boundedness::kMemory
                    ? "memory"
                    : "balanced",
                w->regularity() == workloads::Regularity::kIrregular
                    ? "irregular"
                    : "regular");
    const auto inputs = w->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      std::printf("  %s\n", inputs[i].name.c_str());
      for (const sim::GpuConfig& config : sim::standard_configs()) {
        const core::ExperimentResult& r = study.measure(*w, i, config);
        if (r.usable) {
          std::printf("    %-8s %8.2f s %9.1f J %7.1f W  (spread %.1f%%)\n",
                      config.name.c_str(), r.time_s, r.energy_j, r.power_w,
                      100.0 * r.time_spread);
        } else {
          std::printf("    %-8s insufficient power samples\n", config.name.c_str());
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
