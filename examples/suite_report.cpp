// Suite report: full characterization of one benchmark suite across all
// four GPU configurations - the per-suite view behind the paper's figures.
//
// Usage: suite_report [suite-name]   (default: LonestarGPU)
#include <cstdio>
#include <string>
#include <vector>

#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  v1::Session session;
  const std::string suite = argc > 1 ? argv[1] : "LonestarGPU";

  std::vector<v1::ProgramInfo> programs;
  for (v1::ProgramInfo& p : session.programs()) {
    if (p.suite == suite) programs.push_back(std::move(p));
  }
  if (programs.empty()) {
    std::fprintf(stderr,
                 "unknown suite '%s'; one of: CUDA SDK, LonestarGPU, Parboil, "
                 "Rodinia, SHOC\n",
                 suite.c_str());
    return 1;
  }

  std::printf("%s characterization (median of 3 runs per experiment)\n\n", suite.c_str());
  for (const v1::ProgramInfo& p : programs) {
    const char* variant_note = p.variant.empty() ? "" : "  [variant]";
    std::printf("%s%s - %d global kernel(s), %s/%s\n", p.name.c_str(),
                variant_note, p.num_global_kernels,
                p.boundedness == v1::Boundedness::kCompute   ? "compute"
                : p.boundedness == v1::Boundedness::kMemory ? "memory"
                                                            : "balanced",
                p.regularity == v1::Regularity::kIrregular ? "irregular"
                                                           : "regular");
    for (std::size_t i = 0; i < p.inputs.size(); ++i) {
      std::printf("  %s\n", p.inputs[i].name.c_str());
      for (const v1::GpuConfigSpec& config : v1::standard_configs()) {
        const v1::MeasurementResult r = session.measure(p.name, i, config);
        if (r.usable) {
          std::printf("    %-8s %8.2f s %9.1f J %7.1f W  (spread %.1f%%)\n",
                      config.name.c_str(), r.time_s, r.energy_j, r.power_w,
                      100.0 * r.time_spread);
        } else {
          std::printf("    %-8s insufficient power samples\n", config.name.c_str());
        }
      }
    }
    std::printf("\n");
  }
  return 0;
}
