// DVFS sweep: operating points as first-class API currency. Sweeps the
// (core, mem) frequency plane of one program through Session::sweep —
// analytic V^2 f projection, dominance pruning, sampled measurement of
// the survivors — then asks Session::recommend for the sweet spot under
// each objective: the "repeat experiments at different frequency
// settings" recommendation of paper §VI, automated.
#include <cstdio>
#include <cstdlib>

#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  v1::Session session;

  const char* program = argc > 1 ? argv[1] : "LBM";
  if (!session.has_program(program)) {
    std::fprintf(stderr, "unknown program '%s'\n", program);
    return EXIT_FAILURE;
  }

  // Default grid: core clock 324..705 MHz in 50 MHz steps at the full
  // 2.6 GHz memory clock, voltages interpolated through the paper's
  // operating points, analytically dominated points pruned unmeasured.
  v1::SweepOptions options;
  const v1::SweepResult sweep = session.sweep(program, 0, options);

  std::printf("%s: %zu grid points, %zu pruned analytically, %zu measured\n\n",
              program, sweep.grid_points, sweep.pruned, sweep.measured);
  std::printf("%-14s %6s %6s %10s  %21s %21s\n", "", "core", "volt", "", "—analytic—",
              "—measured—");
  std::printf("%-14s %6s %6s %10s %10s %10s %10s %10s  %s\n", "config", "[MHz]",
              "[V]", "", "time [s]", "energy [J]", "time [s]", "energy [J]",
              "");
  for (const v1::SweepPoint& point : sweep.points) {
    if (point.pruned) {
      std::printf("%-14s %6.0f %6.3f %10s %10.2f %10.1f %10s %10s  pruned\n",
                  point.config.name.c_str(), point.config.core_mhz,
                  point.config.core_voltage, "", point.analytic_time_s,
                  point.analytic_energy_j, "-", "-");
      continue;
    }
    if (!point.result.usable) {
      std::printf("%-14s %6.0f %6.3f %10s %10.2f %10.1f %10s %10s  unusable\n",
                  point.config.name.c_str(), point.config.core_mhz,
                  point.config.core_voltage, "", point.analytic_time_s,
                  point.analytic_energy_j, "-", "-");
      continue;
    }
    std::printf("%-14s %6.0f %6.3f %10s %10.2f %10.1f %10.2f %10.1f  %s\n",
                point.config.name.c_str(), point.config.core_mhz,
                point.config.core_voltage, "", point.analytic_time_s,
                point.analytic_energy_j, point.result.time_s,
                point.result.energy_j, point.pareto ? "pareto" : "");
  }

  // The sweet spot depends on the objective: pure energy favours low
  // clocks, EDP/ED^2P weigh the slowdown back in, and perf_cap keeps the
  // choice within 10% of the fastest point.
  std::printf("\nrecommended operating points\n");
  for (const v1::Objective objective :
       {v1::Objective::kMinEnergy, v1::Objective::kMinEdp,
        v1::Objective::kMinEd2p, v1::Objective::kPerfCap}) {
    v1::RecommendOptions ropt;
    ropt.objective = objective;
    ropt.sweep = options;
    const v1::Recommendation rec = session.recommend(program, 0, ropt);
    if (!rec.ok) {
      std::printf("  %-10s  (%s)\n",
                  std::string(v1::to_string(objective)).c_str(),
                  rec.error.c_str());
      continue;
    }
    std::printf("  %-10s  %-14s %4.0f MHz  %8.2f s  %8.1f J  %6.1f W\n",
                std::string(v1::to_string(objective)).c_str(),
                rec.config.name.c_str(), rec.config.core_mhz, rec.time_s,
                rec.energy_j, rec.power_w);
  }
  return 0;
}
