// DVFS sweep: user-defined frequency sweep beyond the paper's four
// configurations. Shows how to construct custom GpuConfigSpec operating
// points and explore the energy/performance trade-off of one program -
// the "repeat experiments at different frequency settings" recommendation
// of paper §VI.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  v1::Session session;

  const char* program = argc > 1 ? argv[1] : "LBM";
  if (!session.has_program(program)) {
    std::fprintf(stderr, "unknown program '%s'\n", program);
    return EXIT_FAILURE;
  }

  // Sweep the core clock at full memory speed, with a simple linear
  // voltage/frequency rule anchored at the paper's operating points. Each
  // operating point gets a distinct name - the name identifies the point
  // in the session's result cache.
  std::printf("%s: core-clock sweep at 2.6 GHz memory clock\n\n", program);
  std::printf("%8s %10s %12s %12s %10s %14s\n", "core", "volt", "time [s]",
              "energy [J]", "power [W]", "energy*delay");
  for (double core = 705.0; core >= 324.0; core -= 54.0) {
    v1::GpuConfigSpec config;
    config.name = "sweep-" + std::to_string(static_cast<int>(core));
    config.core_mhz = core;
    config.mem_mhz = 2600.0;
    config.core_voltage = 0.78 + 0.22 * (core / 705.0);
    const v1::MeasurementResult r = session.measure(program, 0, config);
    if (!r.usable) {
      std::printf("%8.0f %10.3f %12s %12s %10s %14s\n", core,
                  config.core_voltage, "-", "-", "-", "-");
      continue;
    }
    std::printf("%8.0f %10.3f %12.2f %12.1f %10.1f %14.1f\n", core,
                config.core_voltage, r.time_s, r.energy_j, r.power_w,
                r.energy_j * r.time_s);
  }
  return 0;
}
