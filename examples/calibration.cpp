// Calibration dump: ground-truth active time plus measured time/energy/
// power of every (program, input, config) experiment. Used to tune the
// workload constants against the paper's magnitudes and to audit which
// experiments the sensor pipeline rejects (the paper's 324 exclusions).
//
// Usage: calibration [program-name]
#include <cstdio>
#include <string>

#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  v1::Session session;
  const std::string filter = argc > 1 ? argv[1] : "";

  std::printf("%-14s %-38s %-8s %9s %9s %9s %8s %s\n", "program", "input",
              "config", "true_s", "time_s", "energy_J", "power_W", "usable");
  for (const v1::ProgramInfo& program : session.programs()) {
    if (!filter.empty() && filter != program.name) continue;
    for (std::size_t i = 0; i < program.inputs.size(); ++i) {
      for (const v1::GpuConfigSpec& config : v1::standard_configs()) {
        const v1::MeasurementResult r = session.measure(program.name, i, config);
        std::printf("%-14s %-38.38s %-8s %9.2f %9.2f %9.1f %8.1f %s\n",
                    program.name.c_str(), program.inputs[i].name.c_str(),
                    config.name.c_str(), r.true_active_s, r.time_s, r.energy_j,
                    r.power_w, r.usable ? "yes" : "NO");
      }
    }
  }
  return 0;
}
