// Calibration dump: ground-truth active time plus measured time/energy/
// power of every (program, input, config) experiment. Used to tune the
// workload constants against the paper's magnitudes and to audit which
// experiments the sensor pipeline rejects (the paper's 324 exclusions).
//
// Usage: calibration [program-name]
#include <cstdio>
#include <string>

#include "core/study.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  suites::register_all_workloads();
  const std::string filter = argc > 1 ? argv[1] : "";

  core::Study study;
  std::printf("%-14s %-38s %-8s %9s %9s %9s %8s %s\n", "program", "input",
              "config", "true_s", "time_s", "energy_J", "power_W", "usable");
  for (const workloads::Workload* w : workloads::Registry::instance().all()) {
    if (!filter.empty() && filter != w->name()) continue;
    const auto inputs = w->inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (const sim::GpuConfig& config : sim::standard_configs()) {
        const core::ExperimentResult& r = study.measure(*w, i, config);
        std::printf("%-14s %-38.38s %-8s %9.2f %9.2f %9.1f %8.1f %s\n",
                    std::string(w->name()).c_str(), inputs[i].name.c_str(),
                    config.name.c_str(), r.true_active_s, r.time_s, r.energy_j,
                    r.power_w, r.usable ? "yes" : "NO");
      }
    }
  }
  return 0;
}
