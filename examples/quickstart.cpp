// Quickstart: measure one program under the four GPU configurations.
//
// Demonstrates the public API end to end: look a program up in the
// registry, run the study harness (trace -> timing -> power -> sensor ->
// K20Power analysis, median of 3 repetitions), and print active runtime,
// energy and average power - the paper's three metrics.
#include <cstdio>
#include <cstdlib>

#include "core/study.hpp"
#include "sim/gpuconfig.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  suites::register_all_workloads();

  const char* program = argc > 1 ? argv[1] : "NB";
  const workloads::Workload* workload =
      workloads::Registry::instance().find(program);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown program '%s'; try e.g. NB, L-BFS, LBM\n",
                 program);
    return EXIT_FAILURE;
  }

  core::Study study;
  const auto inputs = workload->inputs();
  std::printf("%s (%s) - %zu input(s)\n\n", program,
              std::string(workload->suite()).c_str(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::printf("input: %s\n", inputs[i].name.c_str());
    std::printf("  %-8s %12s %12s %10s\n", "config", "time [s]", "energy [J]",
                "power [W]");
    for (const sim::GpuConfig& config : sim::standard_configs()) {
      const core::ExperimentResult& r = study.measure(*workload, i, config);
      if (r.usable) {
        std::printf("  %-8s %12.2f %12.1f %10.1f\n", config.name.c_str(),
                    r.time_s, r.energy_j, r.power_w);
      } else {
        std::printf("  %-8s %12s %12s %10s   (insufficient power samples)\n",
                    config.name.c_str(), "-", "-", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}
