// Quickstart: measure one program under the four GPU configurations.
//
// Demonstrates the public API end to end: look a program up in the
// session's catalog, run the study harness (trace -> timing -> power ->
// sensor -> K20Power analysis, median of 3 repetitions), and print active
// runtime, energy and average power - the paper's three metrics.
#include <cstdio>
#include <cstdlib>

#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  v1::Session session;

  const char* program = argc > 1 ? argv[1] : "NB";
  if (!session.has_program(program)) {
    std::fprintf(stderr, "unknown program '%s'; try e.g. NB, L-BFS, LBM\n",
                 program);
    return EXIT_FAILURE;
  }

  const v1::ProgramInfo info = session.program(program);
  std::printf("%s (%s) - %zu input(s)\n\n", program, info.suite.c_str(),
              info.inputs.size());
  for (std::size_t i = 0; i < info.inputs.size(); ++i) {
    std::printf("input: %s\n", info.inputs[i].name.c_str());
    std::printf("  %-8s %12s %12s %10s\n", "config", "time [s]", "energy [J]",
                "power [W]");
    for (const v1::GpuConfigSpec& config : v1::standard_configs()) {
      const v1::MeasurementResult r = session.measure(program, i, config);
      if (r.usable) {
        std::printf("  %-8s %12.2f %12.1f %10.1f\n", config.name.c_str(),
                    r.time_s, r.energy_j, r.power_w);
      } else {
        std::printf("  %-8s %12s %12s %10s   (insufficient power samples)\n",
                    config.name.c_str(), "-", "-", "-");
      }
    }
    std::printf("\n");
  }
  return 0;
}
