// Power-profile dump (paper Figure 1): records one run of a program with
// the simulated on-board sensor and prints the sample stream plus the
// K20Power analysis (idle level, threshold, active window) as CSV-ish
// text, suitable for plotting.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "repro/api.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  v1::Session session;

  const char* program = argc > 1 ? argv[1] : "LBM";
  const char* config_name = argc > 2 ? argv[2] : "default";
  if (!session.has_program(program)) {
    std::fprintf(stderr, "unknown program '%s'\n", program);
    return EXIT_FAILURE;
  }

  v1::PowerProfile m;
  try {
    m = session.profile(program, 0, config_name, 7);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return EXIT_FAILURE;
  }

  std::printf("# %s @ %s: idle=%.1fW threshold=%.1fW peak=%.1fW\n", program,
              config_name, m.idle_w, m.threshold_w, m.peak_w);
  std::printf("# active_time=%.2fs energy=%.1fJ avg_power=%.1fW usable=%s\n",
              m.active_time_s, m.energy_j, m.avg_power_w,
              m.usable ? "yes" : "no");
  std::printf("time_s,power_w\n");
  for (const v1::PowerSample& s : m.samples) {
    std::printf("%.1f,%.1f\n", s.t, s.w);
  }
  return 0;
}
