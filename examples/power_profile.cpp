// Power-profile dump (paper Figure 1): records one run of a program with
// the simulated on-board sensor and prints the sample stream plus the
// K20Power analysis (idle level, threshold, active window) as CSV-ish
// text, suitable for plotting.
#include <cstdio>
#include <cstdlib>

#include "core/study.hpp"
#include "k20power/analyze.hpp"
#include "sensor/sampler.hpp"
#include "sensor/waveform.hpp"
#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/gpuconfig.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  suites::register_all_workloads();

  const char* program = argc > 1 ? argv[1] : "LBM";
  const char* config_name = argc > 2 ? argv[2] : "default";
  const workloads::Workload* workload =
      workloads::Registry::instance().find(program);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown program '%s'\n", program);
    return EXIT_FAILURE;
  }
  const sim::GpuConfig& config = sim::config_by_name(config_name);

  workloads::ExecContext ctx;
  ctx.core_mhz = config.core_mhz;
  ctx.mem_mhz = config.mem_mhz;
  ctx.ecc = config.ecc;
  const auto trace = workload->trace(0, ctx);
  const auto result = sim::run_trace(sim::k20c(), config, trace);

  const power::PowerModel model;
  const sensor::Waveform waveform = sensor::synthesize(result, config, model);
  util::Rng rng{7};
  const sensor::Sensor sensor;
  const auto samples = sensor.record(waveform, rng);
  const auto m = k20power::analyze(
      samples, k20power::options_for_tail(model.tail_power_w(config)));

  std::printf("# %s @ %s: idle=%.1fW threshold=%.1fW peak=%.1fW\n", program,
              config_name, m.idle_w, m.threshold_w, m.peak_w);
  std::printf("# active_time=%.2fs energy=%.1fJ avg_power=%.1fW usable=%s\n",
              m.active_time_s, m.energy_j, m.avg_power_w,
              m.usable ? "yes" : "no");
  std::printf("time_s,power_w\n");
  for (const sensor::Sample& s : samples) {
    std::printf("%.1f,%.1f\n", s.t, s.w);
  }
  return 0;
}
