#!/usr/bin/env bash
# CI driver: build every CMake preset and run its test preset.
#
#   scripts/ci.sh            # default + tsan + asan
#   scripts/ci.sh default    # just one preset
#
# The default preset runs the full suite; the sanitizer presets run the
# label-filtered concurrency suite (scheduler + obs tests) where data
# races and memory errors would actually hide. See CMakePresets.json.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" --output-on-failure
done

echo "=== all presets passed: ${presets[*]}"
