#!/usr/bin/env bash
# CI driver: build every CMake preset and run its test preset.
#
#   scripts/ci.sh            # default + tsan + asan
#   scripts/ci.sh default    # just one preset
#
# The default preset runs the full suite; the sanitizer presets run the
# label-filtered concurrency suite (scheduler + obs tests) where data
# races and memory errors would actually hide. See CMakePresets.json.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" --output-on-failure
done

# Optional Release perf smoke: REPRO_PERF=1 scripts/ci.sh
# Runs bench_micro's bit-identity + speedup gates and writes
# BENCH_pipeline.json (see scripts/bench.sh and DESIGN.md §10).
if [ "${REPRO_PERF:-0}" = "1" ]; then
  echo "=== [perf] Release perf smoke"
  scripts/bench.sh
fi

echo "=== all presets passed: ${presets[*]}"
