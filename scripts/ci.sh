#!/usr/bin/env bash
# CI driver: build every CMake preset and run its test preset.
#
#   scripts/ci.sh            # default + tsan + asan
#   scripts/ci.sh default    # just one preset
#
# The default preset runs the full suite; the sanitizer presets run the
# label-filtered concurrency suite (scheduler, obs, serve and fault tests)
# where data races and memory errors would actually hide. See
# CMakePresets.json.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default tsan asan)
fi

jobs="$(nproc 2>/dev/null || echo 4)"

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure"
  cmake --preset "$preset"
  echo "=== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "=== [$preset] test"
  ctest --preset "$preset" --output-on-failure
done

# Serving-layer smoke (DESIGN.md §11): the canned 30-request batch answered
# by the service under 2 and 8 racing client threads must be byte-identical
# to the same batch answered directly by v1::Session — any diff is a
# determinism bug. Then a canned JSONL batch is replayed through the
# repro-serve stdin/stdout loop: the duplicate must carry identical metric
# bytes (its `cached` flag depends on dispatch timing, so it is not
# asserted) and the unknown program must come back as a structured error,
# never a crash.
if [ -x build/tools/serve_smoke ] && [ -x build/tools/repro-serve ]; then
  echo "=== [serve] multi-client smoke vs direct Study"
  smokedir="$(mktemp -d)"
  trap 'rm -rf "$smokedir"' EXIT
  build/tools/serve_smoke --direct > "$smokedir/direct.txt"
  for k in 2 8; do
    build/tools/serve_smoke --clients "$k" > "$smokedir/clients-$k.txt"
    if ! diff -u "$smokedir/direct.txt" "$smokedir/clients-$k.txt"; then
      echo "serve smoke FAILED: $k-client service output differs from direct Study"
      exit 1
    fi
    echo "  $k clients: byte-identical to direct ($(wc -l < "$smokedir/direct.txt") lines)"
  done

  echo "=== [serve] repro-serve JSONL replay"
  printf '%s\n' \
    '{"v":1,"id":1,"program":"BP","input":0,"config":"default"}' \
    '{"v":1,"id":2,"program":"BP","input":0,"config":"default"}' \
    '{"v":1,"id":3,"program":"NOPE","input":0,"config":"default"}' \
    | build/tools/repro-serve > "$smokedir/wire.txt"
  [ "$(grep -c '"status":"ok"' "$smokedir/wire.txt")" = 2 ] \
    || { echo "repro-serve replay FAILED: expected 2 ok responses"; cat "$smokedir/wire.txt"; exit 1; }
  # Strip the per-request id and the timing-dependent cached flag; the two
  # BP responses must then be byte-identical (bit-identity over the wire).
  normalized() { sed -e 's/"id":[0-9]*,//' -e 's/"cached":[a-z]*,//' "$smokedir/wire.txt" | grep '"status":"ok"' | sort -u | wc -l; }
  [ "$(normalized)" = 1 ] \
    || { echo "repro-serve replay FAILED: duplicate request returned different metric bytes"; cat "$smokedir/wire.txt"; exit 1; }
  grep -q '"id":3,"status":"unknown_program"' "$smokedir/wire.txt" \
    || { echo "repro-serve replay FAILED: unknown program not a structured error"; cat "$smokedir/wire.txt"; exit 1; }
  echo "  replay ok: duplicate bit-identical over the wire, structured error on unknown program"

  # Observability endpoints (DESIGN.md §9): a metrics request returns a
  # registry snapshot, an attribution request returns the instruction-class
  # energy decomposition, and --metrics-every N emits a periodic JSONL
  # delta on stderr. The run implies obs, so the serve counters must show
  # up both on the wire and in the periodic export.
  echo "=== [serve] repro-serve observability endpoints"
  printf '%s\n' \
    '{"v":1,"id":1,"program":"BP","input":0,"config":"default"}' \
    '{"v":1,"metrics":true}' \
    '{"v":1,"attribution":"BP","input":0,"config":"default"}' \
    | build/tools/repro-serve --metrics-every 3 > "$smokedir/obs.txt" 2> "$smokedir/obs-err.txt"
  grep -q '"v":1,"metrics":true,"counters":{.*"serve.cache.' "$smokedir/obs.txt" \
    || { echo "repro-serve obs FAILED: metrics endpoint missing serve counters"; cat "$smokedir/obs.txt"; exit 1; }
  grep -q '"v":1,"attribution":true,.*"class_energy_j":\[' "$smokedir/obs.txt" \
    || { echo "repro-serve obs FAILED: attribution endpoint missing class energies"; cat "$smokedir/obs.txt"; exit 1; }
  grep -q 'repro-serve: metrics after 3 lines' "$smokedir/obs-err.txt" \
    || { echo "repro-serve obs FAILED: --metrics-every export missing"; cat "$smokedir/obs-err.txt"; exit 1; }
  grep -q '"type":"counter"' "$smokedir/obs-err.txt" \
    || { echo "repro-serve obs FAILED: periodic export has no counter lines"; cat "$smokedir/obs-err.txt"; exit 1; }
  echo "  obs ok: metrics + attribution endpoints answered, periodic export emitted"
fi

# Sharded-tier smoke (DESIGN.md §14): the same canned batch answered by a
# 4-worker consistent-hash tier (forked worker processes) must be
# byte-identical to the direct Session answers — exact AND sampled
# requests. Then a seeded worker-kill run: kills must actually fire and
# every response must still resolve ok (rerouted, bit-identical), with
# zero failed responses.
if [ -x build/tools/serve_smoke ]; then
  echo "=== [shard] 4-worker router smoke vs direct Study"
  sharddir="$(mktemp -d)"
  trap 'rm -rf "${smokedir:-}" "$sharddir"' EXIT
  build/tools/serve_smoke --direct --sampled > "$sharddir/direct-sampled.txt"
  build/tools/serve_smoke --router 4 --sampled > "$sharddir/router-4.txt"
  if ! diff -u "$sharddir/direct-sampled.txt" "$sharddir/router-4.txt"; then
    echo "shard smoke FAILED: 4-worker tier output differs from direct Study"
    exit 1
  fi
  echo "  4 workers: byte-identical to direct ($(wc -l < "$sharddir/router-4.txt") lines, sampled rounds included)"

  echo "=== [shard] seeded worker-kill chaos (seed 1, rate 0.05)"
  build/tools/serve_smoke --direct > "$sharddir/direct.txt"
  build/tools/serve_smoke --router 4 --fault-seed 1 --worker-kill-rate 0.05 \
    > "$sharddir/router-chaos.txt" 2> "$sharddir/router-chaos-err.txt"
  if ! diff -u "$sharddir/direct.txt" "$sharddir/router-chaos.txt"; then
    echo "shard chaos FAILED: output under worker kills differs from direct Study"
    exit 1
  fi
  grep -q ' 0 kills' "$sharddir/router-chaos-err.txt" \
    && { echo "shard chaos FAILED: seed 1 fired no worker kills"; cat "$sharddir/router-chaos-err.txt"; exit 1; }
  grep -q ' 0 failed' "$sharddir/router-chaos-err.txt" \
    || { echo "shard chaos FAILED: some responses failed instead of rerouting"; cat "$sharddir/router-chaos-err.txt"; exit 1; }
  echo "  worker kills rerouted: $(sed 's/^serve_smoke: router //' "$sharddir/router-chaos-err.txt" | tail -1)"
fi

# Chaos smoke (DESIGN.md §12): replay the golden slice under 32 seeded
# fault plans and assert the resilience contract per request (every request
# terminates; ok/retried responses are bit-identical to the fault-free
# golden; degraded/failed statuses are truthful). The injected-fault and
# retry counts land in the CHAOS_smoke.json artifact via REPRO_BENCH_JSON.
# Any violation prints the reproducing `chaos_smoke --start <seed>` line.
if [ -x build/tools/chaos_smoke ]; then
  echo "=== [fault] chaos smoke, 32 seeded fault plans"
  REPRO_BENCH_JSON=CHAOS_smoke.json build/tools/chaos_smoke --seeds 32
fi

# Sampling gate (DESIGN.md §13): the sampled "rabbit" mode must be honest
# and fast — on the golden slice its 95% intervals cover the exact value
# >= 90% of the time, on the full warm-trace matrix the median stated
# relative error stays <= 5% per metric and the measurement stage is
# >= 5x faster than the exact pipeline. Numbers land in
# BENCH_sampling.json via REPRO_BENCH_JSON.
if [ -x build/bench/bench_sampling ]; then
  echo "=== [sample] sampling estimator gate"
  REPRO_BENCH_JSON=BENCH_sampling.json build/bench/bench_sampling
fi

# Optional Release perf smoke: REPRO_PERF=1 scripts/ci.sh
# Runs bench_micro's bit-identity + speedup gates and writes
# BENCH_pipeline.json (see scripts/bench.sh and DESIGN.md §10).
if [ "${REPRO_PERF:-0}" = "1" ]; then
  echo "=== [perf] Release perf smoke"
  scripts/bench.sh
  # Always-on observability gate (DESIGN.md §9): obs-on vs obs-off under
  # multi-client serve load must stay within 1%. Numbers land in
  # BENCH_obs.json via REPRO_BENCH_JSON.
  echo "=== [perf] always-on observability overhead gate"
  cmake --build --preset release -j "$jobs" --target bench_obs_overhead
  REPRO_BENCH_JSON=BENCH_obs.json ./build-release/bench/bench_obs_overhead

  # Sharded-tier throughput gate (DESIGN.md §14): Zipf(1.1) cache-miss
  # traffic from 8 closed-loop clients, 4 workers vs 1. The speedup floor
  # scales with the cores actually available (2.5x at >=4 cores; see
  # EXPERIMENTS.md) and the full SLO report (p50/p95/p99, shed/degraded
  # rates) lands in BENCH_serve.json.
  echo "=== [perf] sharded serve throughput gate"
  cmake --build --preset release -j "$jobs" --target load_gen
  ./build-release/tools/load_gen --workers 4 --clients 8 --requests 240 \
    --miss --gate --out BENCH_serve.json

  # DVFS sweep gate (DESIGN.md §15): the analytically-pruned sampled grid
  # sweep must recommend operating points within the sampler's stated
  # confidence of the exact exhaustive optimum at >= 5x less wall-clock
  # cost. Numbers land in BENCH_dvfs.json via REPRO_BENCH_JSON.
  echo "=== [perf] dvfs sweep gate"
  cmake --build --preset release -j "$jobs" --target bench_dvfs_sweep
  REPRO_BENCH_JSON=BENCH_dvfs.json ./build-release/bench/bench_dvfs_sweep

  # Thermal model gate (DESIGN.md §16): an exact characterization with
  # the thermal scenario enabled stays within 5% of thermal-off, and the
  # throttling governor fires truthfully on a sustained trace but not on
  # a burst. Numbers land in BENCH_thermal.json via REPRO_BENCH_JSON.
  echo "=== [perf] thermal model gate"
  cmake --build --preset release -j "$jobs" --target bench_thermal
  REPRO_BENCH_JSON=BENCH_thermal.json ./build-release/bench/bench_thermal
fi

echo "=== all presets passed: ${presets[*]}"
