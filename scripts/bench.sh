#!/usr/bin/env bash
# Performance smoke: build bench_micro with the Release preset and record
# the measurement-pipeline numbers (wall ms per full-matrix batch, sensor
# samples/sec, cursor-vs-binary-search sweep speedup) to a JSON file.
#
#   scripts/bench.sh                 # writes ./BENCH_pipeline.json
#   scripts/bench.sh /tmp/out.json   # custom output path
#
# bench_micro exits nonzero if the fast path is not bit-identical to the
# reference implementations, if the REPRO_OBS counters disagree with the
# structural phase/sample counts, or if the cursor sweep is less than
# 1.5x the reference binary-search sweep — so this doubles as the perf
# regression gate (scripts/ci.sh runs it when REPRO_PERF=1).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_pipeline.json}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== [release] configure"
cmake --preset release
echo "=== [release] build bench_micro"
cmake --build --preset release -j "$jobs" --target bench_micro

# --benchmark_filter='^$' skips the google-benchmark suite; the post-suite
# obs-overhead and pipeline fast-path checks still run and gate the exit
# code.
echo "=== [release] pipeline perf smoke"
REPRO_BENCH_JSON="$out" \
  ./build-release/bench/bench_micro --benchmark_filter='^$'
echo "=== wrote $out"
